// Package cbg implements constraint-based geolocation (Gueye et al.,
// IEEE/ACM ToN 2006) — the delay-measurement alternative to databases
// that the paper's introduction points at ([14] in its bibliography):
// every RTT measurement from a landmark with a known position bounds the
// target inside a disk, and the target is estimated inside the
// intersection of all disks.
//
// The reproduction uses it two ways: as an extension experiment comparing
// measurement-based router geolocation against the four databases, and as
// an ablation of the paper's 0.5 ms proximity rule (which is CBG with a
// single, very tight constraint).
package cbg

import (
	"math"
	"sort"

	"routergeo/internal/geo"
	"routergeo/internal/rtt"
)

// Observation is one landmark measurement: a known vantage position and
// the minimum RTT observed from it to the target.
type Observation struct {
	From  geo.Coordinate
	RTTMs float64
}

// RadiusKm returns the disk radius this observation constrains the target
// to: the distance light in fibre covers in half the RTT.
func (o Observation) RadiusKm() float64 { return rtt.MaxDistanceKmForRTT(o.RTTMs) }

// Result is a CBG estimate.
type Result struct {
	// Coord is the estimated position.
	Coord geo.Coordinate
	// Feasible reports whether a point satisfying every constraint was
	// found. Infeasible systems (over-tight constraints from queueing
	// noise) still yield a best-effort Coord.
	Feasible bool
	// TightestKm is the smallest constraint radius — a bound on the
	// estimate's uncertainty when the system is feasible.
	TightestKm float64
	// Landmarks is the number of observations used.
	Landmarks int
}

// maxIterations bounds the cyclic-projection solver. Convergence is
// geometric for intersecting disks; the bound is far beyond practical
// need and only matters for infeasible systems.
const maxIterations = 256

// Estimate solves the constraint system by cyclic projection: starting at
// the centre of the tightest disk, repeatedly project the point onto the
// most-violated constraint. For a non-empty intersection this converges
// to a feasible point; for an empty one it settles between the
// conflicting disks. ok is false when no observations are given.
func Estimate(obs []Observation) (Result, bool) {
	if len(obs) == 0 {
		return Result{}, false
	}
	// Sort by radius so the iteration starts at the tightest constraint
	// and the result is deterministic regardless of input order.
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool {
		ri, rj := sorted[i].RadiusKm(), sorted[j].RadiusKm()
		if ri != rj {
			return ri < rj
		}
		if sorted[i].From.Lat != sorted[j].From.Lat {
			return sorted[i].From.Lat < sorted[j].From.Lat
		}
		return sorted[i].From.Lon < sorted[j].From.Lon
	})

	p := sorted[0].From
	res := Result{TightestKm: sorted[0].RadiusKm(), Landmarks: len(obs)}

	for iter := 0; iter < maxIterations; iter++ {
		worst := -1
		worstViolation := 0.01 // tolerance (km): absorb spherical numeric error
		for i, o := range sorted {
			v := p.DistanceKm(o.From) - o.RadiusKm()
			if v > worstViolation {
				worst, worstViolation = i, v
			}
		}
		if worst < 0 {
			res.Coord = p
			res.Feasible = true
			return res, true
		}
		// Project p onto the violated disk: move it along the great circle
		// toward the landmark until it sits on the boundary.
		o := sorted[worst]
		d := p.DistanceKm(o.From)
		// Walk from the landmark toward p, stopping just inside the radius
		// so numeric error cannot leave the point marginally outside.
		frac := (o.RadiusKm() * 0.999) / d
		p = interpolate(o.From, p, frac)
	}
	res.Coord = p
	res.Feasible = false
	return res, true
}

// interpolate returns the point a fraction f of the way from a to b along
// the great circle (f in [0,1]).
func interpolate(a, b geo.Coordinate, f float64) geo.Coordinate {
	if f <= 0 {
		return a
	}
	if f >= 1 {
		return b
	}
	// Spherical linear interpolation via vectors.
	ax, ay, az := toVec(a)
	bx, by, bz := toVec(b)
	dot := ax*bx + ay*by + az*bz
	if dot > 1 {
		dot = 1
	} else if dot < -1 {
		dot = -1
	}
	omega := math.Acos(dot)
	if omega < 1e-12 {
		return a
	}
	sinO := math.Sin(omega)
	wa := math.Sin((1-f)*omega) / sinO
	wb := math.Sin(f*omega) / sinO
	x, y, z := wa*ax+wb*bx, wa*ay+wb*by, wa*az+wb*bz
	return fromVec(x, y, z)
}

func toVec(c geo.Coordinate) (x, y, z float64) {
	lat := c.Lat * math.Pi / 180
	lon := c.Lon * math.Pi / 180
	return math.Cos(lat) * math.Cos(lon), math.Cos(lat) * math.Sin(lon), math.Sin(lat)
}

func fromVec(x, y, z float64) geo.Coordinate {
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm == 0 {
		return geo.Coordinate{}
	}
	x, y, z = x/norm, y/norm, z/norm
	return geo.Coordinate{
		Lat: math.Asin(z) * 180 / math.Pi,
		Lon: math.Atan2(y, x) * 180 / math.Pi,
	}
}
