package cbg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"routergeo/internal/geo"
	"routergeo/internal/rtt"
)

func coord(lat, lon float64) geo.Coordinate { return geo.Coordinate{Lat: lat, Lon: lon} }

// landmarksAround fabricates observations for a target at truth, from
// landmarks at the given coordinates, with the given RTT inflation added
// on top of the physical floor.
func landmarksAround(truth geo.Coordinate, landmarks []geo.Coordinate, inflationMs float64) []Observation {
	var out []Observation
	for _, lm := range landmarks {
		out = append(out, Observation{From: lm, RTTMs: rtt.MinRTTMs(lm, truth) + inflationMs})
	}
	return out
}

func TestEstimateEmptyInput(t *testing.T) {
	if _, ok := Estimate(nil); ok {
		t.Error("no observations should yield no estimate")
	}
}

func TestEstimateSingleTightConstraint(t *testing.T) {
	// One 0.5 ms observation constrains the target within 50 km of the
	// landmark — the paper's proximity rule as a degenerate CBG.
	lm := coord(48.8566, 2.3522) // Paris
	res, ok := Estimate([]Observation{{From: lm, RTTMs: 0.5}})
	if !ok || !res.Feasible {
		t.Fatalf("single constraint should be feasible: %+v", res)
	}
	if res.TightestKm != 50 {
		t.Errorf("TightestKm = %v, want 50", res.TightestKm)
	}
	if d := res.Coord.DistanceKm(lm); d > 50 {
		t.Errorf("estimate %v is %.1f km from the only landmark", res.Coord, d)
	}
}

func TestEstimateTriangulates(t *testing.T) {
	// Three European landmarks with light inflation should pin a Frankfurt
	// target within ~the inflation distance.
	truth := coord(50.11, 8.68) // Frankfurt
	landmarks := []geo.Coordinate{
		coord(48.8566, 2.3522), // Paris
		coord(52.52, 13.405),   // Berlin
		coord(45.4642, 9.19),   // Milan
	}
	obs := landmarksAround(truth, landmarks, 0.8) // 0.8 ms extra = 80 km slack
	res, ok := Estimate(obs)
	if !ok || !res.Feasible {
		t.Fatalf("well-posed system infeasible: %+v", res)
	}
	if d := res.Coord.DistanceKm(truth); d > 150 {
		t.Errorf("estimate %.1f km from truth, want < 150", d)
	}
	// Every constraint must actually be satisfied.
	for _, o := range obs {
		if res.Coord.DistanceKm(o.From) > o.RadiusKm()+0.01 {
			t.Errorf("constraint violated by %.2f km",
				res.Coord.DistanceKm(o.From)-o.RadiusKm())
		}
	}
}

func TestEstimateAccuracyImprovesWithTighterConstraints(t *testing.T) {
	truth := coord(40.7128, -74.006) // NYC
	landmarks := []geo.Coordinate{
		coord(42.3601, -71.0589), // Boston
		coord(39.9526, -75.1652), // Philadelphia
		coord(38.9072, -77.0369), // Washington
	}
	loose, _ := Estimate(landmarksAround(truth, landmarks, 5))
	tight, _ := Estimate(landmarksAround(truth, landmarks, 0.3))
	if tight.Coord.DistanceKm(truth) > loose.Coord.DistanceKm(truth)+30 {
		t.Errorf("tighter constraints gave a worse estimate: %.1f vs %.1f km",
			tight.Coord.DistanceKm(truth), loose.Coord.DistanceKm(truth))
	}
	if tight.Coord.DistanceKm(truth) > 80 {
		t.Errorf("tight estimate %.1f km off", tight.Coord.DistanceKm(truth))
	}
}

func TestEstimateInfeasibleStillAnswers(t *testing.T) {
	// Contradictory constraints: two far-apart landmarks both claiming the
	// target within 10 km. The solver must terminate, flag infeasibility,
	// and return something between them.
	a := coord(0, 0)
	b := coord(0, 40)
	res, ok := Estimate([]Observation{
		{From: a, RTTMs: 0.1},
		{From: b, RTTMs: 0.1},
	})
	if !ok {
		t.Fatal("estimate should exist")
	}
	if res.Feasible {
		t.Error("contradictory system flagged feasible")
	}
	if !res.Coord.Valid() {
		t.Error("invalid coordinate returned")
	}
}

func TestEstimateDeterministicUnderPermutation(t *testing.T) {
	truth := coord(51.5, -0.12)
	rng := rand.New(rand.NewSource(1))
	landmarks := []geo.Coordinate{
		coord(48.85, 2.35), coord(52.52, 13.4), coord(53.48, -2.24), coord(50.85, 4.35),
	}
	obs := landmarksAround(truth, landmarks, 1.0)
	base, _ := Estimate(obs)
	for i := 0; i < 10; i++ {
		shuffled := make([]Observation, len(obs))
		copy(shuffled, obs)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		got, _ := Estimate(shuffled)
		if got.Coord != base.Coord || got.Feasible != base.Feasible {
			t.Fatalf("estimate depends on observation order: %+v vs %+v", got, base)
		}
	}
}

func TestEstimateSoundnessProperty(t *testing.T) {
	// For random targets and landmark sets with honest (floor + positive
	// inflation) RTTs, the system is feasible and the estimate satisfies
	// every constraint.
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		truth := coord(rng.Float64()*140-70, rng.Float64()*360-180)
		n := 2 + rng.Intn(5)
		var obs []Observation
		for i := 0; i < n; i++ {
			lm := truth.Offset(rng.Float64()*2000, rng.Float64()*360)
			obs = append(obs, Observation{
				From:  lm,
				RTTMs: rtt.MinRTTMs(lm, truth) + rng.Float64()*3,
			})
		}
		res, ok := Estimate(obs)
		if !ok || !res.Feasible {
			return false
		}
		for _, o := range obs {
			if res.Coord.DistanceKm(o.From) > o.RadiusKm()+0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInterpolate(t *testing.T) {
	a, b := coord(0, 0), coord(0, 90)
	mid := interpolate(a, b, 0.5)
	if math.Abs(mid.Lon-45) > 0.01 || math.Abs(mid.Lat) > 0.01 {
		t.Errorf("midpoint = %v, want 0,45", mid)
	}
	if interpolate(a, b, 0) != a || interpolate(a, b, 1) != b {
		t.Error("interpolation endpoints wrong")
	}
	// Degenerate: identical points.
	same := interpolate(a, a, 0.5)
	if same.DistanceKm(a) > 0.01 {
		t.Errorf("identical-point interpolation moved: %v", same)
	}
}

func TestVecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		c := coord(rng.Float64()*178-89, rng.Float64()*358-179)
		x, y, z := toVec(c)
		back := fromVec(x, y, z)
		return back.DistanceKm(c) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
