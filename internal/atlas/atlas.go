// Package atlas reproduces the RIPE Atlas substrate of the paper's
// RTT-proximity ground truth (§2.3.2): a crowdsourced fleet of probes
// whose *reported* locations are mostly — but not always — correct, and
// the built-in traceroute measurements every probe runs toward a small set
// of well-known targets (the root-server analogues).
//
// The location-error model plants exactly the two failure modes the
// paper's §3.2 filters hunt: probes parked on default country coordinates,
// and probes that moved without their public location being updated.
// Measurement results round-trip through the same JSON shape RIPE Atlas
// publishes (probe id, destination, per-hop addresses and RTT triples).
package atlas

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
	"routergeo/internal/netsim"
	"routergeo/internal/rtt"
	"routergeo/internal/traceroute"
)

// Config parameterizes fleet deployment.
type Config struct {
	// Probes is the fleet size contributing built-in measurements.
	Probes int
	// Targets is the number of built-in traceroute destinations (13 root
	// servers in the real system).
	Targets int
	// RegionWeights places probes per registry region; the default mirrors
	// Atlas's strong European skew, which is what makes the paper's
	// RTT-proximity ground truth RIPE-heavy (Table 1).
	RegionWeights map[geo.RIR]float64
	// CentroidFrac of probes report default country coordinates
	// (19 of 1,387 probes in the paper's data).
	CentroidFrac float64
	// MovedFrac of probes physically moved and report a stale city.
	MovedFrac float64
	// ReportJitterKm bounds how far an honest probe's reported point sits
	// from its city centre (hosts pin their city, not their house).
	ReportJitterKm float64
	// DatacenterFrac of probes are hosted in facilities (Atlas anchors and
	// probes in racks): they attach directly to a transit router with a
	// very fast access link. These probes are what makes the paper's
	// RTT-proximity dataset transit-heavy (74.5% transit, §2.3.3).
	DatacenterFrac float64
	// Seed drives placement and sampling.
	Seed int64
}

// DefaultConfig deploys a fleet proportioned like the paper's.
func DefaultConfig() Config {
	return Config{
		Probes:  1400,
		Targets: 13,
		RegionWeights: map[geo.RIR]float64{
			geo.RIPENCC: 0.68,
			geo.ARIN:    0.14,
			geo.APNIC:   0.09,
			geo.AFRINIC: 0.045,
			geo.LACNIC:  0.045,
		},
		CentroidFrac:   0.014,
		MovedFrac:      0.012,
		ReportJitterKm: 2,
		DatacenterFrac: 0.38,
		Seed:           1,
	}
}

// Probe is one Atlas probe.
type Probe struct {
	ID int
	// TrueCity and TrueCoord are where the probe actually is.
	TrueCity  gazetteer.City
	TrueCoord geo.Coordinate
	// Reported is the crowdsourced public location — what the ground-truth
	// method has to trust.
	Reported geo.Coordinate
	// ReportedCountry is the ISO2 code of the public location.
	ReportedCountry string
	// Mislocated marks probes whose public location is materially wrong
	// (internal truth; the §3.2 filters must find these on their own).
	Mislocated bool
	// Router is the first-hop attachment point.
	Router netsim.RouterID
	// LastMileMs is the probe's access-link RTT contribution.
	LastMileMs float64
	// Datacenter marks facility-hosted probes, which are racked next to
	// their first router. Residential probes instead sit behind a home
	// gateway whose private address never appears in public datasets, so
	// their first *public* hop is hop 2 — the reason the paper finds >80%
	// of RTT-proximate addresses at least two hops from their probes.
	Datacenter bool
}

// Fleet is a deployed probe population plus its built-in targets.
type Fleet struct {
	World   *netsim.World
	Probes  []Probe
	Targets []netsim.RouterID
}

// Deploy places a fleet. Deterministic for a given cfg.Seed.
func Deploy(w *netsim.World, cfg Config) *Fleet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	lastMile := rtt.DefaultLastMile()

	f := &Fleet{World: w}
	for id := 0; id < cfg.Probes; id++ {
		rir := sampleRIR(rng, cfg.RegionWeights)
		country := w.Gaz.SampleCountry(rng, rir)
		city := w.Gaz.SampleCity(rng, country.ISO2)
		trueCoord := city.Coord.Offset(rng.Float64()*12, rng.Float64()*360)

		p := Probe{
			ID:              id,
			TrueCity:        city,
			TrueCoord:       trueCoord,
			Reported:        city.Coord.Offset(rng.Float64()*cfg.ReportJitterKm, rng.Float64()*360),
			ReportedCountry: city.Country,
			LastMileMs:      lastMile.Sample(rng),
		}
		switch x := rng.Float64(); {
		case x < cfg.CentroidFrac:
			// Default country coordinates: the host never set a location.
			p.Reported = country.Centroid.Offset(rng.Float64()*1, rng.Float64()*360)
			p.Mislocated = true
		case x < cfg.CentroidFrac+cfg.MovedFrac:
			// The probe moved; its public location is its previous city.
			prev := w.Gaz.SampleCity(rng, "")
			for prev.Coord.DistanceKm(city.Coord) < 200 {
				prev = w.Gaz.SampleCity(rng, "")
			}
			p.Reported = prev.Coord.Offset(rng.Float64()*cfg.ReportJitterKm, rng.Float64()*360)
			p.ReportedCountry = prev.Country
			p.Mislocated = true
		}
		datacenter := rng.Float64() < cfg.DatacenterFrac
		if datacenter {
			// Facility-hosted probe: racked next to a transit router, with a
			// LAN-grade access link. Relocate the probe's true position to
			// the facility.
			if r, ok := w.NearestRouterFunc(trueCoord, func(id netsim.RouterID) bool {
				rt := &w.Routers[id]
				as := &w.ASes[rt.AS]
				c := as.PoPs[rt.PoP].City
				// Facilities are metro-local: only rack the probe if its own
				// city has a transit PoP, else it stays residential.
				return as.Transit && c.Country == city.Country && c.Name == city.Name
			}); ok {
				p.Router = r
				p.TrueCoord = w.Routers[r].Coord.Offset(0.05+rng.Float64()*0.2, rng.Float64()*360)
				p.LastMileMs = 0.04 + rng.Float64()*0.12
				p.Datacenter = true
				f.Probes = append(f.Probes, p)
				continue
			}
		}
		// Probes sit behind access ISPs: attach to the nearest *stub* router
		// in the probe's country when one is close, falling back to any
		// nearby router. This puts a real access network between the probe
		// and the transit core, as with real Atlas probes (most proximate
		// hops are then ≥2 hops out, §2.3.2).
		r, ok := w.NearestRouterFunc(trueCoord, func(id netsim.RouterID) bool {
			rt := &w.Routers[id]
			as := &w.ASes[rt.AS]
			return !as.Transit && as.PoPs[rt.PoP].City.Country == city.Country
		})
		if ok {
			// Attach at the access edge of that PoP: the last router of the
			// stub's aggregation chain, so first hops climb the metro.
			rt := &w.Routers[r]
			pop := w.ASes[rt.AS].PoPs[rt.PoP]
			r = pop.Routers[len(pop.Routers)-1]
		} else {
			r, ok = w.NearestRouter(trueCoord, city.Country)
		}
		if alt, altOK := w.NearestRouter(trueCoord, city.Country); ok && altOK {
			// If the nearest stub is much farther than the nearest router
			// overall, the probe's host is plugged in elsewhere — take the
			// closer attachment.
			if w.Routers[alt].Coord.DistanceKm(trueCoord)+60 < w.Routers[r].Coord.DistanceKm(trueCoord) {
				r = alt
			}
		}
		if ok {
			p.Router = r
			// The access link must respect geography: a probe whose nearest
			// router is hundreds of kilometres away cannot see it in under
			// a millisecond, or the 0.5 ms proximity rule would be unsound.
			p.LastMileMs += rtt.DefaultModel().PropagationMs(trueCoord, w.Routers[r].Coord, 0)
		}
		f.Probes = append(f.Probes, p)
	}
	f.Targets = pickTargets(w, rng, cfg.Targets)
	return f
}

// pickTargets selects built-in destinations: transit core routers in
// distinct cities, like the anycast root-server instances the real
// built-ins trace toward.
func pickTargets(w *netsim.World, rng *rand.Rand, n int) []netsim.RouterID {
	var candidates []netsim.RouterID
	for i := range w.Routers {
		if w.ASes[w.Routers[i].AS].Transit {
			candidates = append(candidates, w.Routers[i].ID)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	var out []netsim.RouterID
	usedCity := map[string]bool{}
	for _, r := range candidates {
		if len(out) == n {
			break
		}
		city := w.ASes[w.Routers[r].AS].PoPs[w.Routers[r].PoP].City
		key := city.Country + "/" + city.Name
		if usedCity[key] {
			continue
		}
		usedCity[key] = true
		out = append(out, r)
	}
	return out
}

// HopResult is one traceroute hop in the measurement wire format.
type HopResult struct {
	Hop  int       `json:"hop"`
	From string    `json:"from"`
	RTTs []float64 `json:"rtt"`
}

// Measurement is one built-in traceroute result.
type Measurement struct {
	ProbeID int         `json:"prb_id"`
	Type    string      `json:"type"`
	DstAddr string      `json:"dst_addr"`
	Result  []HopResult `json:"result"`
}

// MinRTT returns the smallest of a hop's RTT samples, the value the
// proximity rule uses.
func (h HopResult) MinRTT() float64 {
	min := h.RTTs[0]
	for _, v := range h.RTTs[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// RunBuiltins runs every probe's built-in traceroutes to every target and
// returns the results in wire form. One shortest-path tree per *target*
// serves the entire fleet: links are symmetric, so the tree rooted at the
// target is every probe's reverse-path table.
func (f *Fleet) RunBuiltins(seed int64) []Measurement {
	rng := rand.New(rand.NewSource(seed))
	eng := traceroute.New(f.World)
	model := eng.Model

	var out []Measurement
	for _, target := range f.Targets {
		tree := eng.BuildTree(target)
		dstAddr := f.World.Interfaces[f.World.Routers[target].Ifaces[0]].Addr.String()
		for pi := range f.Probes {
			p := &f.Probes[pi]
			if !tree.Reachable(p.Router) {
				continue
			}
			m := Measurement{ProbeID: p.ID, Type: "traceroute", DstAddr: dstAddr}
			total := tree.DistMs(p.Router)
			// Residential probes burn hop 1 on their home gateway, whose
			// private address is invisible to public datasets.
			hop := 1
			if !p.Datacenter {
				hop = 2
			}
			// Forward path: walk Parent pointers from the probe's router to
			// the tree root (the target).
			path := []netsim.RouterID{p.Router}
			for r := p.Router; r != target; {
				r = tree.Parent(r)
				path = append(path, r)
			}
			for j, r := range path {
				var ifc netsim.IfaceID
				if j == 0 {
					ifc = f.World.Routers[r].Ifaces[0]
				} else {
					// tree.ParentIface(path[j-1]) is the interface at
					// path[j-1] on the link to r; its peer is r's ingress.
					ifc = f.World.PeerIface(tree.ParentIface(path[j-1]))
				}
				prop := p.LastMileMs + 2*(total-tree.DistMs(r)) + float64(j)*model.PerHopMs
				rtts := make([]float64, 3)
				for k := range rtts {
					rtts[k] = prop + rng.ExpFloat64()*model.QueueMeanMs
				}
				m.Result = append(m.Result, HopResult{
					Hop:  hop,
					From: f.World.Interfaces[ifc].Addr.String(),
					RTTs: rtts,
				})
				hop++
			}
			out = append(out, m)
		}
	}
	return out
}

// EncodeJSON writes measurements as a JSON array, the format RIPE Atlas
// serves its results in.
func EncodeJSON(w io.Writer, ms []Measurement) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ms)
}

// DecodeJSON reads a measurement array written by EncodeJSON.
func DecodeJSON(r io.Reader) ([]Measurement, error) {
	var ms []Measurement
	if err := json.NewDecoder(r).Decode(&ms); err != nil {
		return nil, fmt.Errorf("atlas: decode: %w", err)
	}
	return ms, nil
}

func sampleRIR(rng *rand.Rand, weights map[geo.RIR]float64) geo.RIR {
	total := 0.0
	for _, r := range geo.RIRs {
		total += weights[r]
	}
	x := rng.Float64() * total
	for _, r := range geo.RIRs {
		x -= weights[r]
		if x < 0 {
			return r
		}
	}
	return geo.RIPENCC
}
