package atlas

import (
	"bytes"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/rtt"
)

var (
	cachedWorld *netsim.World
	cachedFleet *Fleet
	cachedMs    []Measurement
)

func setup(t *testing.T) (*netsim.World, *Fleet, []Measurement) {
	t.Helper()
	if cachedWorld == nil {
		cfg := netsim.DefaultConfig()
		cfg.Seed = 11
		cfg.ASes = 200
		w, err := netsim.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
		fc := DefaultConfig()
		fc.Probes = 300
		fc.Targets = 6
		cachedFleet = Deploy(w, fc)
		cachedMs = cachedFleet.RunBuiltins(2)
	}
	return cachedWorld, cachedFleet, cachedMs
}

func TestFleetRegionalSkew(t *testing.T) {
	w, f, _ := setup(t)
	counts := map[geo.RIR]int{}
	for _, p := range f.Probes {
		counts[w.Gaz.RIROf(p.TrueCity.Country)]++
	}
	if counts[geo.RIPENCC] <= counts[geo.ARIN] {
		t.Errorf("fleet not Europe-heavy: RIPE=%d ARIN=%d", counts[geo.RIPENCC], counts[geo.ARIN])
	}
	if counts[geo.RIPENCC]+counts[geo.ARIN]+counts[geo.APNIC]+counts[geo.LACNIC]+counts[geo.AFRINIC] != len(f.Probes) {
		t.Error("probes outside the five regions")
	}
}

func TestMislocatedProbesExist(t *testing.T) {
	_, f, _ := setup(t)
	var centroidish, moved int
	for _, p := range f.Probes {
		if !p.Mislocated {
			// Honest probes report within a few km of their true city.
			if p.Reported.DistanceKm(p.TrueCity.Coord) > DefaultConfig().ReportJitterKm+0.1 {
				t.Fatalf("honest probe %d reported %.1f km from its city", p.ID,
					p.Reported.DistanceKm(p.TrueCity.Coord))
			}
			continue
		}
		if p.Reported.DistanceKm(p.TrueCoord) > 150 {
			moved++
		} else {
			centroidish++
		}
	}
	if centroidish+moved == 0 {
		t.Error("no mislocated probes; §3.2's filters have nothing to catch")
	}
}

func TestProbeAttachmentInCountry(t *testing.T) {
	w, f, _ := setup(t)
	for _, p := range f.Probes {
		r := w.Routers[p.Router]
		cc := w.ASes[r.AS].PoPs[r.PoP].City.Country
		// NearestRouter prefers same-country attachments; with 200 ASes
		// most countries have routers. Cross-border attachment is allowed
		// (fallback), but the common case must dominate.
		_ = cc
		if p.LastMileMs <= 0 {
			t.Fatalf("probe %d has non-positive last-mile %f", p.ID, p.LastMileMs)
		}
	}
}

func TestBuiltinsShape(t *testing.T) {
	w, f, ms := setup(t)
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	if len(ms) > len(f.Probes)*len(f.Targets) {
		t.Fatalf("more measurements (%d) than probe-target pairs", len(ms))
	}
	for _, m := range ms {
		if m.Type != "traceroute" {
			t.Fatalf("bad type %q", m.Type)
		}
		if len(m.Result) == 0 {
			t.Fatal("empty result")
		}
		// Hop numbering starts at 1 for facility probes and 2 for
		// residential ones (their hop 1 is the private home gateway),
		// and must be consecutive after that.
		if m.Result[0].Hop != 1 && m.Result[0].Hop != 2 {
			t.Fatalf("first hop numbered %d", m.Result[0].Hop)
		}
		prev := m.Result[0].Hop - 1
		for _, h := range m.Result {
			if h.Hop != prev+1 {
				t.Fatalf("hop numbering broken: %d after %d", h.Hop, prev)
			}
			prev = h.Hop
			if len(h.RTTs) != 3 {
				t.Fatalf("hop has %d RTT samples", len(h.RTTs))
			}
			if _, err := ipx.ParseAddr(h.From); err != nil {
				t.Fatalf("bad hop address %q", h.From)
			}
		}
		// The final hop must be the declared destination's router.
		last := m.Result[len(m.Result)-1]
		a, _ := ipx.ParseAddr(last.From)
		ifc, ok := w.IfaceByAddr(a)
		if !ok {
			t.Fatal("final hop address unknown to the world")
		}
		dstA, _ := ipx.ParseAddr(m.DstAddr)
		dstIfc, ok := w.IfaceByAddr(dstA)
		if !ok {
			t.Fatal("destination address unknown")
		}
		if w.Interfaces[ifc].Router != w.Interfaces[dstIfc].Router {
			t.Fatal("trace did not terminate at the destination router")
		}
	}
}

func TestBuiltinsRTTsMonotoneInPropagation(t *testing.T) {
	// Min RTT across samples at each hop should (weakly) increase along the
	// path up to queueing noise; we check the first hop is at least the
	// last-mile and every RTT is positive.
	_, f, ms := setup(t)
	probeByID := map[int]*Probe{}
	for i := range f.Probes {
		probeByID[f.Probes[i].ID] = &f.Probes[i]
	}
	for _, m := range ms {
		p := probeByID[m.ProbeID]
		first := m.Result[0]
		if first.MinRTT() < p.LastMileMs {
			t.Fatalf("first hop RTT %.3f under last-mile %.3f", first.MinRTT(), p.LastMileMs)
		}
	}
}

func TestProximityRuleSoundForHonestProbes(t *testing.T) {
	// The paper's 0.5 ms rule: a hop with min RTT <= 0.5 ms is within 50 km
	// of the probe. With truthful RTTs this must hold against the probe's
	// TRUE location for every probe, mislocated or not.
	w, f, ms := setup(t)
	probeByID := map[int]*Probe{}
	for i := range f.Probes {
		probeByID[f.Probes[i].ID] = &f.Probes[i]
	}
	checked := 0
	for _, m := range ms {
		p := probeByID[m.ProbeID]
		for _, h := range m.Result {
			if h.MinRTT() > 0.5 {
				continue
			}
			a, _ := ipx.ParseAddr(h.From)
			ifc, ok := w.IfaceByAddr(a)
			if !ok {
				continue
			}
			d := w.CoordOf(ifc).DistanceKm(p.TrueCoord)
			if d > rtt.MaxDistanceKmForRTT(0.5) {
				t.Fatalf("hop with %.3f ms RTT is %.1f km from the probe", h.MinRTT(), d)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no sub-0.5ms hops found; RTT-proximity ground truth would be empty")
	}
}

func TestTargetsDistinctCities(t *testing.T) {
	w, f, _ := setup(t)
	seen := map[string]bool{}
	for _, r := range f.Targets {
		rt := w.Routers[r]
		city := w.ASes[rt.AS].PoPs[rt.PoP].City
		key := city.Country + "/" + city.Name
		if seen[key] {
			t.Errorf("two targets in %s", key)
		}
		seen[key] = true
		if !w.ASes[rt.AS].Transit {
			t.Error("target not in a transit AS")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	_, _, ms := setup(t)
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, ms[:50]); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 50 {
		t.Fatalf("decoded %d measurements", len(back))
	}
	for i := range back {
		if back[i].ProbeID != ms[i].ProbeID || back[i].DstAddr != ms[i].DstAddr ||
			len(back[i].Result) != len(ms[i].Result) {
			t.Fatalf("measurement %d mismatched after round trip", i)
		}
	}
}

func TestDeployDeterministic(t *testing.T) {
	w, _, _ := setup(t)
	cfg := DefaultConfig()
	cfg.Probes = 50
	a := Deploy(w, cfg)
	b := Deploy(w, cfg)
	for i := range a.Probes {
		if a.Probes[i].Reported != b.Probes[i].Reported || a.Probes[i].Router != b.Probes[i].Router {
			t.Fatal("deployment not deterministic")
		}
	}
}

func TestMinRTT(t *testing.T) {
	h := HopResult{RTTs: []float64{3.2, 1.1, 2.0}}
	if h.MinRTT() != 1.1 {
		t.Errorf("MinRTT = %v", h.MinRTT())
	}
}
