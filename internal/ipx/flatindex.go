package ipx

import "fmt"

// FlatIndex is an immutable, cache-friendly view of a built RangeMap:
// the interval bounds live in two parallel slices (structure-of-arrays,
// so a binary search touches only the 4-byte lower bounds, not whole
// records), and a /16 jump table narrows every search to the handful of
// intervals that can cover the address's top half. Lookup is safe for
// concurrent use; for single-goroutine loops with address locality,
// NewFinder returns an even cheaper accessor.
type FlatIndex[V any] struct {
	los  []Addr
	his  []Addr
	vals []V
	// jump[k] is the index of the first interval with Lo >= k<<16, for
	// k in [0, 65536]; jump[65536] == len(los). An address a is covered,
	// if at all, by the interval just before the first Lo > a, and that
	// boundary always falls inside [jump[a>>16], jump[a>>16+1]].
	jump []int32
}

// NewFlatIndex flattens a built RangeMap. It panics if m has not been
// built, mirroring RangeMap.Lookup.
func NewFlatIndex[V any](m *RangeMap[V]) *FlatIndex[V] {
	if !m.built {
		panic("ipx: NewFlatIndex before Build")
	}
	x := &FlatIndex[V]{
		los:  make([]Addr, len(m.ranges)),
		his:  make([]Addr, len(m.ranges)),
		vals: make([]V, len(m.ranges)),
		jump: make([]int32, 1<<16+1),
	}
	for i, r := range m.ranges {
		x.los[i] = r.Lo
		x.his[i] = r.Hi
		x.vals[i] = m.values[i]
	}
	// One pass over the sorted lower bounds fills the jump table: walk
	// the /16 buckets and record where each bucket's intervals start.
	k := 0
	for i, lo := range x.los {
		for k <= int(lo>>16) {
			x.jump[k] = int32(i)
			k++
		}
	}
	for ; k <= 1<<16; k++ {
		x.jump[k] = int32(len(x.los))
	}
	return x
}

// Len returns the number of intervals.
func (x *FlatIndex[V]) Len() int { return len(x.los) }

// SoA exposes the index's backing arrays — interval lower bounds, upper
// bounds, values and the /16 jump table — so they can be serialized (or
// walked) without copying. The returned slices are the live arrays, not
// copies: callers must treat them as read-only.
func (x *FlatIndex[V]) SoA() (los, his []Addr, vals []V, jump []int32) {
	return x.los, x.his, x.vals, x.jump
}

// FlatIndexFromSoA adopts pre-built SoA arrays — typically sections of a
// memory-mapped snapshot — without copying them, after validating every
// invariant find relies on: matching lengths, sorted non-overlapping
// intervals, and a jump table consistent with the bounds. The error
// names the first violation, so a corrupted snapshot fails loudly
// instead of serving wrong answers.
func FlatIndexFromSoA[V any](los, his []Addr, vals []V, jump []int32) (*FlatIndex[V], error) {
	if len(his) != len(los) || len(vals) != len(los) {
		return nil, fmt.Errorf("ipx: SoA length mismatch: %d los, %d his, %d vals",
			len(los), len(his), len(vals))
	}
	if len(jump) != 1<<16+1 {
		return nil, fmt.Errorf("ipx: jump table has %d entries, want %d", len(jump), 1<<16+1)
	}
	for i := range los {
		if los[i] > his[i] {
			return nil, fmt.Errorf("ipx: inverted interval %d: %v-%v", i, los[i], his[i])
		}
		if i > 0 && los[i] <= his[i-1] {
			return nil, fmt.Errorf("ipx: intervals %d and %d out of order or overlapping", i-1, i)
		}
	}
	k := 0
	for i, lo := range los {
		for k <= int(lo>>16) {
			if jump[k] != int32(i) {
				return nil, fmt.Errorf("ipx: jump[%d] = %d, want %d", k, jump[k], i)
			}
			k++
		}
	}
	for ; k <= 1<<16; k++ {
		if jump[k] != int32(len(los)) {
			return nil, fmt.Errorf("ipx: jump[%d] = %d, want %d", k, jump[k], len(los))
		}
	}
	return &FlatIndex[V]{los: los, his: his, vals: vals, jump: jump}, nil
}

// linearCutoff is the bucket-window width below which find switches
// from binary search to a linear scan of the lower bounds. Short
// windows are the common case (/16 buckets rarely hold many intervals),
// and a forward scan over the 4-byte SoA bounds is branch-predictable
// and prefetch-friendly where binary search is neither.
const linearCutoff = 8

// find returns the index of the interval covering a, if any.
func (x *FlatIndex[V]) find(a Addr) (int, bool) {
	hi := a >> 16
	lo, up := int(x.jump[hi]), int(x.jump[hi+1])
	// Binary search inside the bucket window for the first Lo > a, until
	// the window is short enough that a linear scan wins.
	for up-lo > linearCutoff {
		mid := int(uint(lo+up) >> 1)
		if x.los[mid] > a {
			up = mid
		} else {
			lo = mid + 1
		}
	}
	for lo < up && x.los[lo] <= a {
		lo++
	}
	if lo == 0 {
		return 0, false
	}
	if x.his[lo-1] >= a { // los[lo-1] <= a by construction
		return lo - 1, true
	}
	return 0, false
}

// Lookup returns the value covering a. It is equivalent to the source
// RangeMap's Lookup and safe for concurrent use.
func (x *FlatIndex[V]) Lookup(a Addr) (V, bool) {
	if i, ok := x.find(a); ok {
		return x.vals[i], true
	}
	var zero V
	return zero, false
}

// Finder is a single-goroutine accessor over a FlatIndex carrying a
// last-hit cache: consecutive addresses in the same interval (traceroute
// hops cluster in prefixes, sweeps walk address order) skip the search
// entirely. Mint one per worker goroutine; the methods are NOT safe for
// concurrent use. Finders sharing one FlatIndex are independent.
type Finder[V any] struct {
	idx  *FlatIndex[V]
	last int // index of the last hit, -1 before any
}

// NewFinder returns a fresh Finder over x.
func (x *FlatIndex[V]) NewFinder() *Finder[V] { return &Finder[V]{idx: x, last: -1} }

// Lookup returns the value covering a, consulting the last-hit interval
// before searching.
func (f *Finder[V]) Lookup(a Addr) (V, bool) {
	if l := f.last; l >= 0 && f.idx.los[l] <= a && a <= f.idx.his[l] {
		return f.idx.vals[l], true
	}
	i, ok := f.idx.find(a)
	if !ok {
		var zero V
		return zero, false
	}
	f.last = i
	return f.idx.vals[i], true
}
