package ipx

import (
	"math/rand"
	"sort"
	"testing"
)

// buildRandomMap makes a RangeMap of n disjoint random intervals drawn
// from rng, spread over the full address space.
func buildRandomMap(t testing.TB, rng *rand.Rand, n int) *RangeMap[int] {
	t.Helper()
	m := &RangeMap[int]{}
	// Draw 2n distinct points, pair them up in sorted order, keep every
	// other pair so neighbours stay disjoint.
	points := make([]Addr, 0, 2*n)
	seen := map[Addr]bool{}
	for len(points) < 2*n {
		a := Addr(rng.Uint32())
		if !seen[a] {
			seen[a] = true
			points = append(points, a)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	for i := 0; i+3 < len(points); i += 4 {
		m.Add(Range{Lo: points[i], Hi: points[i+1]}, i)
	}
	m.MustBuild()
	return m
}

func TestFlatIndexMatchesRangeMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 17, 300, 4000} {
		m := buildRandomMap(t, rng, n)
		x := NewFlatIndex(m)
		if x.Len() != m.Len() {
			t.Fatalf("n=%d: Len %d != %d", n, x.Len(), m.Len())
		}
		f := x.NewFinder()
		probe := func(a Addr) {
			wantV, wantOK := m.Lookup(a)
			gotV, gotOK := x.Lookup(a)
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("n=%d: FlatIndex.Lookup(%v) = %v,%v want %v,%v", n, a, gotV, gotOK, wantV, wantOK)
			}
			fv, fok := f.Lookup(a)
			if fv != wantV || fok != wantOK {
				t.Fatalf("n=%d: Finder.Lookup(%v) = %v,%v want %v,%v", n, a, fv, fok, wantV, wantOK)
			}
		}
		// Random probes plus every interval's boundary neighbourhood —
		// the off-by-one-prone addresses.
		for i := 0; i < 2000; i++ {
			probe(Addr(rng.Uint32()))
		}
		m.Walk(func(r Range, _ int) bool {
			probe(r.Lo)
			probe(r.Hi)
			if r.Lo > 0 {
				probe(r.Lo - 1)
			}
			if r.Hi < ^Addr(0) {
				probe(r.Hi + 1)
			}
			return true
		})
		probe(0)
		probe(^Addr(0))
	}
}

func TestFlatIndexCrossBoundaryRange(t *testing.T) {
	// One interval spanning many /16 buckets: every bucket inside it must
	// still resolve through the jump table to the interval's single entry.
	m := &RangeMap[string]{}
	m.Add(Range{Lo: MustParseAddr("10.0.0.0"), Hi: MustParseAddr("10.200.0.0")}, "wide")
	m.Add(Range{Lo: MustParseAddr("10.200.0.2"), Hi: MustParseAddr("10.200.0.2")}, "point")
	m.MustBuild()
	x := NewFlatIndex(m)
	for _, tc := range []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.0.0.0", "wide", true},
		{"10.100.200.30", "wide", true},
		{"10.200.0.0", "wide", true},
		{"10.200.0.1", "", false},
		{"10.200.0.2", "point", true},
		{"10.200.0.3", "", false},
		{"9.255.255.255", "", false},
		{"11.0.0.0", "", false},
	} {
		v, ok := x.Lookup(MustParseAddr(tc.addr))
		if v != tc.want || ok != tc.ok {
			t.Errorf("Lookup(%s) = %q,%v want %q,%v", tc.addr, v, ok, tc.want, tc.ok)
		}
	}
}

func TestFlatIndexBeforeBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFlatIndex on an unbuilt map did not panic")
		}
	}()
	NewFlatIndex(&RangeMap[int]{})
}

func TestFinderLocality(t *testing.T) {
	m := &RangeMap[int]{}
	m.AddPrefix(MustParsePrefix("10.0.0.0/24"), 1)
	m.AddPrefix(MustParsePrefix("10.0.1.0/24"), 2)
	m.MustBuild()
	f := NewFlatIndex(m).NewFinder()
	// A run inside one prefix, then a switch, then a miss, then back:
	// the cache must never change an answer.
	seq := []struct {
		addr string
		want int
		ok   bool
	}{
		{"10.0.0.1", 1, true},
		{"10.0.0.2", 1, true},
		{"10.0.0.255", 1, true},
		{"10.0.1.0", 2, true},
		{"10.0.2.0", 0, false},
		{"10.0.0.9", 1, true},
	}
	for _, s := range seq {
		v, ok := f.Lookup(MustParseAddr(s.addr))
		if v != s.want || ok != s.ok {
			t.Errorf("Finder.Lookup(%s) = %d,%v want %d,%v", s.addr, v, ok, s.want, s.ok)
		}
	}
}

func BenchmarkRangeMapLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := buildRandomMap(b, rng, 20000)
	addrs := make([]Addr, 4096)
	for i := range addrs {
		addrs[i] = Addr(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkFlatIndexLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := NewFlatIndex(buildRandomMap(b, rng, 20000))
	addrs := make([]Addr, 4096)
	for i := range addrs {
		addrs[i] = Addr(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkFinderLookupClustered(b *testing.B) {
	// Sequential /24 walks, the sweep access pattern the last-hit cache
	// is built for.
	rng := rand.New(rand.NewSource(3))
	x := NewFlatIndex(buildRandomMap(b, rng, 20000))
	f := x.NewFinder()
	base := Addr(rng.Uint32())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(base + Addr(i&0xff))
	}
}
