package ipx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{"0.0.0.0", 0, false},
		{"255.255.255.255", 0xffffffff, false},
		{"10.1.2.3", 0x0a010203, false},
		{"192.0.2.1", 0xc0000201, false},
		{"256.0.0.1", 0, true},
		{"1.2.3", 0, true},
		{"::1", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAddr(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", tt.in, got, tt.want)
		}
	}
}

func TestAddrStringRoundTripProperty(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrNetip(t *testing.T) {
	a := MustParseAddr("203.0.113.7")
	if got := a.Netip().String(); got != "203.0.113.7" {
		t.Errorf("Netip() = %s", got)
	}
}

func TestSlash24(t *testing.T) {
	a := MustParseAddr("198.51.100.200")
	p := a.Slash24()
	if p.String() != "198.51.100.0/24" {
		t.Errorf("Slash24 = %v", p)
	}
	if !p.Contains(a) || !p.Contains(MustParseAddr("198.51.100.0")) {
		t.Error("Slash24 should contain its own addresses")
	}
	if p.Contains(MustParseAddr("198.51.101.0")) {
		t.Error("Slash24 should not contain the next block")
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if p.Size() != 1<<24 {
		t.Errorf("Size = %d", p.Size())
	}
	if p.First().String() != "10.0.0.0" || p.Last().String() != "10.255.255.255" {
		t.Errorf("bounds = %v..%v", p.First(), p.Last())
	}
	// Base normalization.
	q := MustParsePrefix("10.1.2.3/8")
	if q != p {
		t.Errorf("unnormalized base: %v", q)
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestPrefixZeroBits(t *testing.T) {
	p := Prefix{Base: 0, Bits: 0}
	if !p.Contains(0xffffffff) || !p.Contains(0) {
		t.Error("/0 must contain everything")
	}
	if p.Size() != 1<<32 {
		t.Errorf("/0 size = %d", p.Size())
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixSplit(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	subs := p.Split(26)
	if len(subs) != 4 {
		t.Fatalf("Split(26) gave %d prefixes", len(subs))
	}
	want := []string{"192.0.2.0/26", "192.0.2.64/26", "192.0.2.128/26", "192.0.2.192/26"}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("sub[%d] = %v, want %s", i, s, want[i])
		}
	}
	if got := p.Split(24); len(got) != 1 || got[0] != p {
		t.Errorf("Split to same length = %v", got)
	}
}

func TestPrefixSplitPanicsOnShorter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split to shorter prefix should panic")
		}
	}()
	MustParsePrefix("10.0.0.0/16").Split(8)
}

func TestRangeMapLookup(t *testing.T) {
	var m RangeMap[string]
	m.AddPrefix(MustParsePrefix("10.0.0.0/8"), "ten")
	m.AddPrefix(MustParsePrefix("192.0.2.0/24"), "doc")
	m.Add(Range{Lo: MustParseAddr("172.16.0.0"), Hi: MustParseAddr("172.16.0.9")}, "tiny")
	m.MustBuild()

	tests := []struct {
		ip   string
		want string
		ok   bool
	}{
		{"10.0.0.0", "ten", true},
		{"10.255.255.255", "ten", true},
		{"11.0.0.0", "", false},
		{"9.255.255.255", "", false},
		{"192.0.2.128", "doc", true},
		{"172.16.0.9", "tiny", true},
		{"172.16.0.10", "", false},
		{"0.0.0.0", "", false},
		{"255.255.255.255", "", false},
	}
	for _, tt := range tests {
		got, ok := m.Lookup(MustParseAddr(tt.ip))
		if ok != tt.ok || got != tt.want {
			t.Errorf("Lookup(%s) = %q,%v want %q,%v", tt.ip, got, ok, tt.want, tt.ok)
		}
	}
}

func TestRangeMapOverlapDetection(t *testing.T) {
	var m RangeMap[int]
	m.AddPrefix(MustParsePrefix("10.0.0.0/8"), 1)
	m.AddPrefix(MustParsePrefix("10.1.0.0/16"), 2)
	if err := m.Build(); err == nil {
		t.Error("Build should reject overlapping ranges")
	}
}

func TestRangeMapAdjacentRangesOK(t *testing.T) {
	var m RangeMap[int]
	m.Add(Range{Lo: 0, Hi: 99}, 1)
	m.Add(Range{Lo: 100, Hi: 199}, 2)
	if err := m.Build(); err != nil {
		t.Fatalf("adjacent ranges rejected: %v", err)
	}
	if v, ok := m.Lookup(100); !ok || v != 2 {
		t.Errorf("Lookup(100) = %v,%v", v, ok)
	}
	if v, ok := m.Lookup(99); !ok || v != 1 {
		t.Errorf("Lookup(99) = %v,%v", v, ok)
	}
}

func TestRangeMapEmpty(t *testing.T) {
	var m RangeMap[int]
	m.MustBuild()
	if _, ok := m.Lookup(42); ok {
		t.Error("empty map should find nothing")
	}
}

func TestRangeMapLookupProperty(t *testing.T) {
	// Build a map of random disjoint /24s; every address inside must
	// resolve to its block's value, every address outside must miss.
	rng := rand.New(rand.NewSource(11))
	var m RangeMap[uint32]
	blocks := map[Addr]uint32{}
	for i := 0; i < 500; i++ {
		base := Addr(rng.Uint32()) &^ 0xff
		if _, dup := blocks[base]; dup {
			continue
		}
		blocks[base] = uint32(i)
		m.AddPrefix(Prefix{Base: base, Bits: 24}, uint32(i))
	}
	m.MustBuild()

	f := func(raw uint32) bool {
		a := Addr(raw)
		want, inside := blocks[a&^0xff]
		got, ok := m.Lookup(a)
		if inside {
			return ok && got == want
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRangeMapWalkOrdered(t *testing.T) {
	var m RangeMap[int]
	m.AddPrefix(MustParsePrefix("200.0.0.0/8"), 3)
	m.AddPrefix(MustParsePrefix("10.0.0.0/8"), 1)
	m.AddPrefix(MustParsePrefix("100.0.0.0/8"), 2)
	m.MustBuild()
	var got []int
	m.Walk(func(_ Range, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Walk order = %v", got)
	}
	// Early stop.
	n := 0
	m.Walk(func(Range, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("Walk did not stop early: %d calls", n)
	}
}

func TestAllocatorSequential(t *testing.T) {
	a := NewAllocator(MustParsePrefix("10.0.0.0/16"))
	p1, ok := a.Alloc(24)
	if !ok || p1.String() != "10.0.0.0/24" {
		t.Fatalf("first alloc = %v, %v", p1, ok)
	}
	p2, ok := a.Alloc(24)
	if !ok || p2.String() != "10.0.1.0/24" {
		t.Fatalf("second alloc = %v, %v", p2, ok)
	}
	// A /20 must be aligned: next free is 10.0.2.0, aligned up to 10.0.16.0.
	p3, ok := a.Alloc(20)
	if !ok || p3.String() != "10.0.16.0/20" {
		t.Fatalf("aligned alloc = %v, %v", p3, ok)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(MustParsePrefix("192.0.2.0/24"))
	for i := 0; i < 4; i++ {
		if _, ok := a.Alloc(26); !ok {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if _, ok := a.Alloc(26); ok {
		t.Error("allocation should fail after exhaustion")
	}
	if a.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", a.Remaining())
	}
}

func TestAllocatorRejectsShorterThanPool(t *testing.T) {
	a := NewAllocator(MustParsePrefix("10.0.0.0/16"))
	if _, ok := a.Alloc(8); ok {
		t.Error("allocating a /8 from a /16 pool must fail")
	}
}

func TestAllocatorDisjointProperty(t *testing.T) {
	// Any sequence of successful allocations must be pairwise disjoint and
	// inside the pool.
	rng := rand.New(rand.NewSource(12))
	pool := MustParsePrefix("172.16.0.0/12")
	a := NewAllocator(pool)
	var got []Prefix
	for i := 0; i < 300; i++ {
		bits := uint8(20 + rng.Intn(10)) // /20../29
		p, ok := a.Alloc(bits)
		if !ok {
			break
		}
		if !pool.Overlaps(p) || p.First() < pool.First() || p.Last() > pool.Last() {
			t.Fatalf("allocation %v escapes pool %v", p, pool)
		}
		got = append(got, p)
	}
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[i].Overlaps(got[j]) {
				t.Fatalf("allocations overlap: %v and %v", got[i], got[j])
			}
		}
	}
	if len(got) < 100 {
		t.Fatalf("expected many successful allocations, got %d", len(got))
	}
}

func TestAllocatorFullAddressSpaceEnd(t *testing.T) {
	// Allocating at the very top of the IPv4 space must not wrap around.
	a := NewAllocator(MustParsePrefix("255.255.255.0/24"))
	if _, ok := a.Alloc(24); !ok {
		t.Fatal("top /24 should be allocatable")
	}
	if _, ok := a.Alloc(32); ok {
		t.Error("pool should be exhausted after full allocation")
	}
}

func TestRangeSizeAndString(t *testing.T) {
	r := Range{Lo: MustParseAddr("10.0.0.0"), Hi: MustParseAddr("10.0.0.255")}
	if r.Size() != 256 {
		t.Errorf("Size = %d", r.Size())
	}
	if r.String() != "10.0.0.0-10.0.0.255" {
		t.Errorf("String = %s", r.String())
	}
	full := Range{Lo: 0, Hi: 0xffffffff}
	if full.Size() != 1<<32 {
		t.Errorf("full range size = %d", full.Size())
	}
}
