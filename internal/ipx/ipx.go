// Package ipx provides the IPv4 machinery the reproduction is built on:
// a compact address type, CIDR prefixes, a sorted range map with
// longest-prefix-style lookup (the same access pattern commercial
// geolocation databases serve), and a sequential prefix allocator used to
// model RIR address delegation.
//
// Everything is IPv4-only, as is the paper (its Ark dataset is IPv4 /24
// probing). Addresses are uint32s in host order; conversion to and from
// dotted-quad strings and net/netip is provided at the edges.
package ipx

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("ipx: parse %q: %w", s, err)
	}
	if !a.Is4() {
		return 0, fmt.Errorf("ipx: %q is not IPv4", s)
	}
	b := a.As4()
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])), nil
}

// MustParseAddr is ParseAddr for tests and constants; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the dotted-quad form.
func (a Addr) String() string {
	var b strings.Builder
	b.Grow(15)
	b.WriteString(strconv.Itoa(int(a >> 24)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(a >> 16 & 0xff)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(a >> 8 & 0xff)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(a & 0xff)))
	return b.String()
}

// Netip converts to a net/netip address.
func (a Addr) Netip() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}

// Slash24 returns the address of a's enclosing /24 block — the granularity
// Ark probes at and the typical granularity of block-level geolocation
// records (§5.2.3).
func (a Addr) Slash24() Prefix { return Prefix{Base: a &^ 0xff, Bits: 24} }

// Prefix is a CIDR block.
type Prefix struct {
	Base Addr  // first address; always aligned to Bits
	Bits uint8 // prefix length, 0..32
}

// ParsePrefix parses "a.b.c.d/n" and normalizes the base address.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipx: prefix %q missing /", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipx: bad prefix length in %q", s)
	}
	p := Prefix{Base: a, Bits: uint8(bits)}
	p.Base = a & p.mask()
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p Prefix) mask() Addr {
	if p.Bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - p.Bits))
}

// Contains reports whether a falls inside p.
func (p Prefix) Contains(a Addr) bool { return a&p.mask() == p.Base }

// Size returns the number of addresses in p.
func (p Prefix) Size() uint64 { return 1 << (32 - p.Bits) }

// First returns the first address in p.
func (p Prefix) First() Addr { return p.Base }

// Last returns the last address in p.
func (p Prefix) Last() Addr { return p.Base + Addr(p.Size()-1) }

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.First() <= q.Last() && q.First() <= p.Last()
}

// String returns the CIDR form.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(int(p.Bits))
}

// Split returns p cut into 2^(newBits-p.Bits) sub-prefixes of length
// newBits. It panics if newBits < p.Bits or newBits > 32, which indicates a
// programming error in the caller.
func (p Prefix) Split(newBits uint8) []Prefix {
	if newBits < p.Bits || newBits > 32 {
		panic(fmt.Sprintf("ipx: cannot split %v into /%d", p, newBits))
	}
	n := 1 << (newBits - p.Bits)
	step := Addr(1) << (32 - newBits)
	out := make([]Prefix, n)
	for i := range out {
		out[i] = Prefix{Base: p.Base + Addr(i)*step, Bits: newBits}
	}
	return out
}
