package ipx

import (
	"math/rand"
	"testing"
)

// batchTestIndex builds a FlatIndex with a mix of bucket shapes: dense
// /24 runs inside 10/8 (wide /16 windows), a giant range spanning many
// /16s, sparse singletons, and empty buckets between them.
func batchTestIndex(t testing.TB) *FlatIndex[uint32] {
	t.Helper()
	m := &RangeMap[uint32]{}
	v := uint32(0)
	add := func(lo, hi Addr) {
		m.Add(Range{Lo: lo, Hi: hi}, v)
		v++
	}
	for i := 0; i < 700; i++ {
		if i%3 == 2 {
			continue // hole
		}
		base := Addr(10<<24 | i<<8)
		add(base, base+255)
	}
	add(50<<24, 53<<24) // spans several /16 buckets
	for i := 0; i < 64; i++ {
		add(Addr(80<<24|i<<16|7), Addr(80<<24|i<<16|7)) // singletons
	}
	if err := m.Build(); err != nil {
		t.Fatal(err)
	}
	return NewFlatIndex(m)
}

// checkBatchMatchesLookup pins LookupBatch to the per-address oracle.
func checkBatchMatchesLookup(t *testing.T, x *FlatIndex[uint32], addrs []Addr, s *BatchScratch) {
	t.Helper()
	vals := make([]uint32, len(addrs))
	found := make([]bool, len(addrs))
	x.LookupBatch(addrs, vals, found, s)
	for i, a := range addrs {
		wantV, wantOK := x.Lookup(a)
		if vals[i] != wantV || found[i] != wantOK {
			t.Fatalf("LookupBatch[%d] (%v) = %v,%v want %v,%v", i, a, vals[i], found[i], wantV, wantOK)
		}
	}
}

func TestLookupBatchMatchesLookup(t *testing.T) {
	x := batchTestIndex(t)
	rng := rand.New(rand.NewSource(7))
	s := &BatchScratch{}

	patterns := map[string][]Addr{
		"empty":     {},
		"single":    {10<<24 | 5<<8 | 1},
		"ascending": make([]Addr, 5000),
		"random":    make([]Addr, 5000),
		"reversed":  make([]Addr, 5000),
		// Adversarial for the monotone cursor: alternate between distant
		// buckets so consecutive sorted keys still jump windows.
		"striped":    make([]Addr, 5000),
		"duplicates": make([]Addr, 5000),
		"misses":     make([]Addr, 5000),
		"boundaries": nil,
	}
	for i := range patterns["ascending"] {
		patterns["ascending"][i] = Addr(10<<24 + i*37)
	}
	for i := range patterns["random"] {
		patterns["random"][i] = Addr(rng.Uint32())
	}
	for i := range patterns["reversed"] {
		patterns["reversed"][i] = Addr(90<<24) - Addr(i*101)
	}
	for i := range patterns["striped"] {
		switch i % 3 {
		case 0:
			patterns["striped"][i] = Addr(10<<24 | (i%700)<<8 | i%256)
		case 1:
			patterns["striped"][i] = Addr(51<<24 + i)
		default:
			patterns["striped"][i] = Addr(80<<24 | (i%64)<<16 | i%16)
		}
	}
	for i := range patterns["duplicates"] {
		patterns["duplicates"][i] = Addr(10<<24 | (i%4)<<8 | 9)
	}
	for i := range patterns["misses"] {
		patterns["misses"][i] = Addr(200<<24 + i)
	}
	los, his, _, _ := x.SoA()
	for i := range los {
		patterns["boundaries"] = append(patterns["boundaries"],
			los[i], his[i], los[i]-1, his[i]+1)
	}

	for name, addrs := range patterns {
		t.Run(name, func(t *testing.T) {
			checkBatchMatchesLookup(t, x, addrs, s)
		})
	}
}

// TestLookupBatchSegments crosses the 2^16 segment boundary so the
// per-segment position packing is exercised.
func TestLookupBatchSegments(t *testing.T) {
	x := batchTestIndex(t)
	rng := rand.New(rand.NewSource(11))
	n := batchSegment + batchSegment/2
	addrs := make([]Addr, n)
	for i := range addrs {
		addrs[i] = Addr(rng.Uint32())
	}
	checkBatchMatchesLookup(t, x, addrs, &BatchScratch{})
}

// TestFindBatchScratchReuse runs batches of shrinking and growing sizes
// through one scratch, catching stale-buffer bugs.
func TestFindBatchScratchReuse(t *testing.T) {
	x := batchTestIndex(t)
	rng := rand.New(rand.NewSource(13))
	s := &BatchScratch{}
	for _, n := range []int{4096, 17, 0, 9000, 1, 256} {
		addrs := make([]Addr, n)
		for i := range addrs {
			addrs[i] = Addr(10<<24 | rng.Intn(900)<<8 | rng.Intn(256))
		}
		checkBatchMatchesLookup(t, x, addrs, s)
	}
}

func TestFindBatchShortOutputPanics(t *testing.T) {
	x := batchTestIndex(t)
	defer func() {
		if recover() == nil {
			t.Fatal("FindBatch with a short output did not panic")
		}
	}()
	x.FindBatch(make([]Addr, 4), make([]int32, 3), &BatchScratch{})
}

func BenchmarkLookupBatch(b *testing.B) {
	x := batchTestIndex(b)
	s := &BatchScratch{}
	rng := rand.New(rand.NewSource(3))
	const n = 8192
	random := make([]Addr, n)
	clustered := make([]Addr, n)
	for i := range random {
		random[i] = Addr(10<<24 | rng.Intn(900)<<8 | rng.Intn(256))
		clustered[i] = Addr(10<<24 | (i/64)%700<<8 | i%256)
	}
	vals := make([]uint32, n)
	found := make([]bool, n)
	for _, bc := range []struct {
		name  string
		addrs []Addr
	}{{"random", random}, {"clustered", clustered}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x.LookupBatch(bc.addrs, vals, found, s)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "addrs/s")
		})
	}
}
