package ipx

import "testing"

// FuzzParseAddr checks the address parser never panics and that accepted
// inputs round-trip through String.
func FuzzParseAddr(f *testing.F) {
	f.Add("0.0.0.0")
	f.Add("255.255.255.255")
	f.Add("10.0.0.1")
	f.Add("::1")
	f.Add("")
	f.Add("1.2.3.4.5")

	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip broke: %q -> %v -> %q", s, a, a.String())
		}
	})
}

// FuzzParsePrefix checks the CIDR parser: accepted prefixes must be
// normalized (base aligned) and self-consistent.
func FuzzParsePrefix(f *testing.F) {
	f.Add("10.0.0.0/8")
	f.Add("192.0.2.1/31")
	f.Add("0.0.0.0/0")
	f.Add("1.2.3.4/33")
	f.Add("x/8")

	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.Bits > 32 {
			t.Fatalf("accepted /%d", p.Bits)
		}
		if !p.Contains(p.First()) || !p.Contains(p.Last()) {
			t.Fatalf("prefix %v does not contain its own bounds", p)
		}
		if p.First() != p.Base {
			t.Fatalf("unnormalized base in %v", p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip broke: %q -> %v", s, p)
		}
	})
}
