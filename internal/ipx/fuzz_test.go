package ipx

import (
	"encoding/binary"
	"testing"
)

// FuzzParseAddr checks the address parser never panics and that accepted
// inputs round-trip through String.
func FuzzParseAddr(f *testing.F) {
	f.Add("0.0.0.0")
	f.Add("255.255.255.255")
	f.Add("10.0.0.1")
	f.Add("::1")
	f.Add("")
	f.Add("1.2.3.4.5")

	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip broke: %q -> %v -> %q", s, a, a.String())
		}
	})
}

// FuzzParsePrefix checks the CIDR parser: accepted prefixes must be
// normalized (base aligned) and self-consistent.
func FuzzParsePrefix(f *testing.F) {
	f.Add("10.0.0.0/8")
	f.Add("192.0.2.1/31")
	f.Add("0.0.0.0/0")
	f.Add("1.2.3.4/33")
	f.Add("x/8")

	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.Bits > 32 {
			t.Fatalf("accepted /%d", p.Bits)
		}
		if !p.Contains(p.First()) || !p.Contains(p.Last()) {
			t.Fatalf("prefix %v does not contain its own bounds", p)
		}
		if p.First() != p.Base {
			t.Fatalf("unnormalized base in %v", p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip broke: %q -> %v", s, p)
		}
	})
}

// FuzzFlatIndexEquivalence decodes the fuzz input as a range set plus
// probe addresses and checks that FlatIndex and Finder lookups agree
// with RangeMap.Lookup on every probe. Overlapping draws are dropped
// rather than rejected so almost any input exercises the index.
func FuzzFlatIndexEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{
		10, 0, 0, 0, 10, 0, 255, 255, // 10.0/16
		10, 1, 0, 0, 10, 1, 0, 0, // single address
		10, 0, 0, 5, 10, 2, 0, 0, // probes
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := &RangeMap[uint32]{}
		var hi Addr // highest endpoint placed so far, keeps draws disjoint
		placed := false
		i := 0
		for ; i+8 <= len(data) && m.Len() < 1<<12; i += 8 {
			lo := Addr(binary.BigEndian.Uint32(data[i:]))
			hiR := Addr(binary.BigEndian.Uint32(data[i+4:]))
			if lo > hiR {
				lo, hiR = hiR, lo
			}
			if placed && lo <= hi {
				continue
			}
			m.Add(Range{Lo: lo, Hi: hiR}, uint32(i))
			hi, placed = hiR, true
		}
		if err := m.Build(); err != nil {
			t.Fatalf("disjoint construction still overlapped: %v", err)
		}
		x := NewFlatIndex(m)
		fd := x.NewFinder()
		check := func(a Addr) {
			wantV, wantOK := m.Lookup(a)
			if gotV, gotOK := x.Lookup(a); gotV != wantV || gotOK != wantOK {
				t.Fatalf("FlatIndex.Lookup(%v) = %v,%v want %v,%v", a, gotV, gotOK, wantV, wantOK)
			}
			if gotV, gotOK := fd.Lookup(a); gotV != wantV || gotOK != wantOK {
				t.Fatalf("Finder.Lookup(%v) = %v,%v want %v,%v", a, gotV, gotOK, wantV, wantOK)
			}
		}
		// Remaining bytes are probes; boundaries of every range too.
		for ; i+4 <= len(data); i += 4 {
			check(Addr(binary.BigEndian.Uint32(data[i:])))
		}
		m.Walk(func(r Range, _ uint32) bool {
			check(r.Lo)
			check(r.Hi)
			check(r.Lo - 1)
			check(r.Hi + 1)
			return true
		})
	})
}

// FuzzLookupBatchEquivalence decodes the input as a range set plus a
// probe list (any order, duplicates and misses included) and checks the
// sort-then-walk LookupBatch kernel answers exactly like per-address
// Lookup at every position.
func FuzzLookupBatchEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{10, 0, 0, 0, 10, 0, 255, 255, 10, 0, 0, 5, 9, 255, 255, 255})
	f.Add([]byte{
		10, 0, 0, 0, 10, 0, 255, 255,
		10, 2, 0, 0, 10, 7, 0, 0, // spans several /16 buckets
		10, 3, 0, 9, 10, 0, 0, 1, 10, 3, 0, 9, // probes, descending, repeated
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := &RangeMap[uint32]{}
		var hi Addr
		placed := false
		i := 0
		for ; i+8 <= len(data) && m.Len() < 1<<10; i += 8 {
			lo := Addr(binary.BigEndian.Uint32(data[i:]))
			hiR := Addr(binary.BigEndian.Uint32(data[i+4:]))
			if lo > hiR {
				lo, hiR = hiR, lo
			}
			if placed && lo <= hi {
				continue
			}
			m.Add(Range{Lo: lo, Hi: hiR}, uint32(i))
			hi, placed = hiR, true
		}
		if err := m.Build(); err != nil {
			t.Fatalf("disjoint construction still overlapped: %v", err)
		}
		x := NewFlatIndex(m)
		var addrs []Addr
		for ; i+4 <= len(data); i += 4 {
			addrs = append(addrs, Addr(binary.BigEndian.Uint32(data[i:])))
		}
		m.Walk(func(r Range, _ uint32) bool {
			addrs = append(addrs, r.Lo, r.Hi, r.Lo-1, r.Hi+1)
			return true
		})
		vals := make([]uint32, len(addrs))
		found := make([]bool, len(addrs))
		x.LookupBatch(addrs, vals, found, &BatchScratch{})
		for k, a := range addrs {
			wantV, wantOK := x.Lookup(a)
			if vals[k] != wantV || found[k] != wantOK {
				t.Fatalf("LookupBatch[%d] (%v) = %v,%v want %v,%v", k, a, vals[k], found[k], wantV, wantOK)
			}
		}
	})
}
