package ipx

// The batch lookup kernel. Sweeps probe hundreds of thousands of
// addresses with no locality, which defeats both the Finder's last-hit
// cache and the branch predictor inside find's binary search. FindBatch
// instead sorts each block of addresses (an LSD radix sort over the
// address bits, ~3x faster than a comparison sort here) and walks the
// interval table once, monotonically, resolving every address against a
// forward-moving cursor. Results scatter back to input positions, so
// callers observe exactly the per-address Lookup answers in input order.

// batchSegment is the largest number of addresses one sort-and-walk
// segment handles: the radix keys pack the address in the top 32 bits
// and the input position in the low 16, so a segment holds at most 2^16
// entries. Larger batches are processed as consecutive segments.
const batchSegment = 1 << 16

// radixBits/radixSize parameterize the LSD radix sort: 3 passes of 11
// bits cover the 32 address bits, and an 11-bit counting table (8 KiB
// per pass) stays cache-resident, unlike a 16-bit one.
const (
	radixBits   = 11
	radixPasses = 3
	radixSize   = 1 << radixBits
	radixMask   = radixSize - 1
)

// BatchScratch is the reusable working memory of FindBatch/LookupBatch:
// the radix key buffers and counting tables. The zero value is ready to
// use; buffers grow on demand and are retained across calls, so a
// per-worker scratch makes steady-state batch lookups allocation-free.
// A BatchScratch must not be shared between concurrent calls.
type BatchScratch struct {
	keys []uint64
	tmp  []uint64
	idx  []int32
	cnt  [radixPasses][radixSize]uint32
}

// grow returns s resized to n, reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// FindBatch resolves many addresses at once, filling out[i] with the
// index of the interval covering addrs[i], or -1 when no interval does.
// It is equivalent to calling find per address but walks the index
// monotonically over sorted probes. out must have len(addrs) room; s
// carries the scratch buffers between calls.
//
//geolint:hotpath
func (x *FlatIndex[V]) FindBatch(addrs []Addr, out []int32, s *BatchScratch) {
	if len(out) < len(addrs) {
		panic("ipx: FindBatch output shorter than input")
	}
	for base := 0; base < len(addrs); base += batchSegment {
		end := base + batchSegment
		if end > len(addrs) {
			end = len(addrs)
		}
		x.findSegment(addrs[base:end], out[base:end], s)
	}
}

// findSegment is FindBatch over one <= 2^16 address segment.
//
//geolint:hotpath
func (x *FlatIndex[V]) findSegment(addrs []Addr, out []int32, s *BatchScratch) {
	n := len(addrs)
	if n == 0 {
		return
	}
	s.keys = grow(s.keys, n)
	s.tmp = grow(s.tmp, n)
	keys := s.keys[:n]
	for i, a := range addrs {
		keys[i] = uint64(a)<<16 | uint64(i)
	}
	keys = radixSortAddrKeys(keys, s.tmp[:n], &s.cnt)

	// Monotone walk: keys ascend by address, so the position of the
	// first interval with Lo > a never moves backwards. The /16 jump
	// table seeds each probe past untouched buckets; within a bucket a
	// galloping search advances the cursor — O(1) compares when sorted
	// neighbours land in the same or adjacent intervals (the common
	// case), O(log gap) when one stray address jumps far ahead.
	p := 0
	for _, k := range keys {
		a := Addr(k >> 16)
		if j := int(x.jump[a>>16]); j > p {
			p = j
		}
		if up := int(x.jump[a>>16+1]); p < up && x.los[p] <= a {
			// Gallop to bracket the first Lo > a, then binary search the
			// bracket. Invariant entering the loop: los[p] <= a.
			lo, hi := p, up
			step := 1
			for lo+step < hi && x.los[lo+step] <= a {
				lo += step
				step <<= 1
			}
			if lo+step < hi {
				hi = lo + step
			}
			for lo+1 < hi {
				mid := int(uint(lo+hi) >> 1)
				if x.los[mid] > a {
					hi = mid
				} else {
					lo = mid
				}
			}
			p = lo + 1
		}
		r := int32(-1)
		if p > 0 && x.his[p-1] >= a {
			r = int32(p - 1)
		}
		out[k&0xffff] = r
	}
}

// radixSortAddrKeys sorts keys (address<<16 | position) by their
// address bits with a stable LSD radix sort, returning the sorted slice
// (one of keys/tmp). Passes whose digit is constant across the segment
// are skipped, so clustered inputs sort in a single scatter.
func radixSortAddrKeys(keys, tmp []uint64, cnt *[radixPasses][radixSize]uint32) []uint64 {
	for d := 0; d < radixPasses; d++ {
		c := &cnt[d]
		for i := range c {
			c[i] = 0
		}
	}
	for _, k := range keys {
		cnt[0][(k>>16)&radixMask]++
		cnt[1][(k>>(16+radixBits))&radixMask]++
		cnt[2][(k>>(16+2*radixBits))&radixMask]++
	}
	a, b := keys, tmp
	for d := 0; d < radixPasses; d++ {
		c := &cnt[d]
		shift := uint(16 + d*radixBits)
		if c[(a[0]>>shift)&radixMask] == uint32(len(a)) {
			continue // every key shares this digit; nothing to move
		}
		sum := uint32(0)
		for i := range c {
			c[i], sum = sum, sum+c[i]
		}
		for _, k := range a {
			digit := (k >> shift) & radixMask
			b[c[digit]] = k
			c[digit]++
		}
		a, b = b, a
	}
	return a
}

// LookupBatch resolves many addresses at once: vals[i] and found[i]
// receive what Lookup(addrs[i]) would return. Both outputs must have
// len(addrs) room. See FindBatch for the kernel.
func (x *FlatIndex[V]) LookupBatch(addrs []Addr, vals []V, found []bool, s *BatchScratch) {
	if len(vals) < len(addrs) || len(found) < len(addrs) {
		panic("ipx: LookupBatch output shorter than input")
	}
	out := growScratchIdx(s, len(addrs))
	x.FindBatch(addrs, out, s)
	var zero V
	for i, r := range out {
		if r >= 0 {
			vals[i], found[i] = x.vals[r], true
		} else {
			vals[i], found[i] = zero, false
		}
	}
}

// idx is the interval-index buffer LookupBatch threads through
// FindBatch; kept on the scratch so steady-state calls stay
// allocation-free.
func growScratchIdx(s *BatchScratch, n int) []int32 {
	s.idx = grow(s.idx, n)
	return s.idx[:n]
}
