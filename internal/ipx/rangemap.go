package ipx

import (
	"fmt"
	"sort"
)

// Range is a half-open... no — an *inclusive* address interval [Lo, Hi],
// the record shape geolocation database files use (both MaxMind's legacy
// CSV and IP2Location ship start/end columns).
type Range struct {
	Lo, Hi Addr
}

// RangeOf returns p's address interval.
func RangeOf(p Prefix) Range { return Range{Lo: p.First(), Hi: p.Last()} }

// Contains reports whether a falls in r.
func (r Range) Contains(a Addr) bool { return r.Lo <= a && a <= r.Hi }

// Size returns the number of addresses in r.
func (r Range) Size() uint64 { return uint64(r.Hi) - uint64(r.Lo) + 1 }

// String formats r as "lo-hi".
func (r Range) String() string { return r.Lo.String() + "-" + r.Hi.String() }

// RangeMap is a sorted, non-overlapping map from address intervals to
// values, the core lookup structure of every simulated geolocation
// database and of the whois registry. Build it once with Add/Build, then
// Lookup concurrently.
type RangeMap[V any] struct {
	ranges []Range
	values []V
	built  bool
}

// Add inserts an interval. Add panics after Build; the structure is
// immutable once built.
func (m *RangeMap[V]) Add(r Range, v V) {
	if m.built {
		panic("ipx: Add after Build")
	}
	if r.Lo > r.Hi {
		panic(fmt.Sprintf("ipx: inverted range %v", r))
	}
	m.ranges = append(m.ranges, r)
	m.values = append(m.values, v)
}

// AddPrefix inserts a CIDR block.
func (m *RangeMap[V]) AddPrefix(p Prefix, v V) { m.Add(RangeOf(p), v) }

// Build sorts the intervals and verifies they do not overlap. It returns
// an error naming the first overlapping pair if they do.
func (m *RangeMap[V]) Build() error {
	if m.built {
		return nil
	}
	idx := make([]int, len(m.ranges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return m.ranges[idx[a]].Lo < m.ranges[idx[b]].Lo })

	ranges := make([]Range, len(idx))
	values := make([]V, len(idx))
	for i, j := range idx {
		ranges[i] = m.ranges[j]
		values[i] = m.values[j]
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo <= ranges[i-1].Hi {
			return fmt.Errorf("ipx: overlapping ranges %v and %v", ranges[i-1], ranges[i])
		}
	}
	m.ranges, m.values = ranges, values
	m.built = true
	return nil
}

// MustBuild is Build that panics on overlap, for statically-known inputs.
func (m *RangeMap[V]) MustBuild() {
	if err := m.Build(); err != nil {
		panic(err)
	}
}

// Len returns the number of intervals.
func (m *RangeMap[V]) Len() int { return len(m.ranges) }

// Lookup returns the value covering a. It panics if called before Build.
func (m *RangeMap[V]) Lookup(a Addr) (V, bool) {
	if !m.built {
		panic("ipx: Lookup before Build")
	}
	// Binary search for the last range with Lo <= a.
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].Lo > a })
	var zero V
	if i == 0 {
		return zero, false
	}
	if r := m.ranges[i-1]; r.Contains(a) {
		return m.values[i-1], true
	}
	return zero, false
}

// Walk calls fn for every interval in ascending order, stopping early if fn
// returns false.
func (m *RangeMap[V]) Walk(fn func(Range, V) bool) {
	for i := range m.ranges {
		if !fn(m.ranges[i], m.values[i]) {
			return
		}
	}
}

// Allocator hands out aligned, non-overlapping sub-prefixes of a parent
// pool in address order. It models how an RIR delegates blocks to
// organizations, and how an organization carves its delegation into
// per-PoP assignments.
type Allocator struct {
	pool Prefix
	next Addr
	done bool // next wrapped past the pool end
}

// NewAllocator returns an allocator over pool.
func NewAllocator(pool Prefix) *Allocator {
	return &Allocator{pool: pool, next: pool.First()}
}

// Alloc returns the next free prefix of the requested length. ok is false
// when the pool is exhausted. Requests shorter than the pool fail
// immediately.
func (a *Allocator) Alloc(bits uint8) (p Prefix, ok bool) {
	if bits < a.pool.Bits || bits > 32 || a.done {
		return Prefix{}, false
	}
	size := Addr(1) << (32 - bits)
	// Align upward.
	base := (a.next + size - 1) &^ (size - 1)
	if base < a.next || base > a.pool.Last() || base+size-1 > a.pool.Last() {
		return Prefix{}, false
	}
	a.next = base + size
	if a.next == 0 { // wrapped at 255.255.255.255
		a.done = true
	}
	return Prefix{Base: base, Bits: bits}, true
}

// Remaining returns the number of unallocated addresses left in the pool
// (ignoring alignment waste future allocations may incur).
func (a *Allocator) Remaining() uint64 {
	if a.done || a.next > a.pool.Last() {
		return 0
	}
	return uint64(a.pool.Last()) - uint64(a.next) + 1
}
