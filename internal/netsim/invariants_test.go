package netsim

import (
	"testing"
)

// TestWorldInvariantsAcrossSeeds builds several independent small worlds
// and checks the structural invariants every downstream system assumes.
// These are the property-style guarantees the whole reproduction rests
// on; a regression in the generator shows up here before it corrupts an
// experiment.
func TestWorldInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple world builds")
	}
	for seed := int64(100); seed < 106; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.ASes = 130
		w, err := Build(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Every router belongs to the PoP that lists it.
		for i := range w.Routers {
			r := &w.Routers[i]
			pop := w.ASes[r.AS].PoPs[r.PoP]
			found := false
			for _, id := range pop.Routers {
				if id == r.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d: router %d missing from its PoP", seed, i)
			}
		}

		// Every interface's address resolves back to itself, and its /24
		// has an owner reachable by DestRouterFor.
		for i := range w.Interfaces {
			ifc := &w.Interfaces[i]
			got, ok := w.IfaceByAddr(ifc.Addr)
			if !ok || got != ifc.ID {
				t.Fatalf("seed %d: address index broken at %v", seed, ifc.Addr)
			}
			if _, ok := w.DestRouterFor(ifc.Addr); !ok {
				t.Fatalf("seed %d: %v unroutable", seed, ifc.Addr)
			}
		}

		// The seven ground-truth domains exist with hint-capable schemes.
		domains := map[string]bool{}
		for i := range w.ASes {
			domains[w.ASes[i].Domain] = true
			if w.ASes[i].HintCoverage < 0 || w.ASes[i].HintCoverage > 1 {
				t.Fatalf("seed %d: AS%d hint coverage %v out of range",
					seed, w.ASes[i].ASN, w.ASes[i].HintCoverage)
			}
		}
		for _, d := range []string{"cogentco.com", "ntt.net", "seabone.net", "pnap.net",
			"peak10.net", "digitalwest.net", "belwue.de"} {
			if !domains[d] {
				t.Fatalf("seed %d: seed domain %s missing", seed, d)
			}
		}

		// Links never exceed a hemisphere and are never negative-delay
		// (sanity for the Dijkstra weights).
		for _, l := range w.Links {
			if l.OneWayMs < 0 || l.OneWayMs > 200 {
				t.Fatalf("seed %d: implausible link delay %v ms", seed, l.OneWayMs)
			}
		}
	}
}

// BenchmarkBuildWorld measures default-scale world generation.
func BenchmarkBuildWorld(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
