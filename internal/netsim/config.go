package netsim

import "routergeo/internal/geo"

// SeedAS pins a specific, named operator into the world. The defaults
// reproduce the paper's seven DNS-ground-truth domains (§2.3.1) at the
// reproduction's scale, with headquarters and footprints modelled on the
// real operators.
type SeedAS struct {
	ASN          uint32
	Name         string
	Domain       string
	HQCountry    string // ISO2
	HQCity       string
	RIR          geo.RIR
	Transit      bool
	PoPs         int     // total PoP count
	ForeignShare float64 // fraction of PoPs outside the home country
	// ForeignRIRBias weights which registry region foreign PoPs land in;
	// nil means "spread per DefaultForeignBias".
	ForeignRIRBias map[geo.RIR]float64
	HintScheme     string
	HintCoverage   float64
	// PoPRouters overrides the per-PoP router cap for this operator
	// (0 = the config default). The seven ground-truth operators are
	// large networks with many routers per site; scaling them up keeps
	// the DNS-based ground truth dominant over the RTT-based one, as in
	// the paper (11,857 vs 4,838).
	PoPRouters int
}

// Config parameterizes world generation. Zero fields are filled from
// DefaultConfig by Build.
type Config struct {
	Seed int64

	// ASes is the total number of autonomous systems including seeds.
	ASes int
	// TransitFraction of the synthetic (non-seed) ASes are transit
	// networks with multi-city footprints.
	TransitFraction float64
	// MultinationalFraction of synthetic transit ASes operate PoPs outside
	// their home country. Keyed by the org's RIR so regions can differ: the
	// paper's Figure 3 shows LACNIC ground truth with zero country-level
	// error, consistent with single-country operators there.
	MultinationalFraction map[geo.RIR]float64
	// ForeignShare is the fraction of a multinational's PoPs abroad.
	ForeignShare float64
	// RIRWeights controls where synthetic orgs are registered. Defaults
	// roughly track routed-address share (ARIN-heavy).
	RIRWeights map[geo.RIR]float64

	// Topology knobs.
	TransitPoPsMin, TransitPoPsMax int
	StubPoPsMax                    int
	RoutersPerTransitPoPMax        int
	RoutersPerStubPoPMax           int
	// ExtraIntraASLinkProb adds chords beyond the PoP ring.
	ExtraIntraASLinkProb float64
	// PeeringRadiusKm links two transit ASes when both have PoPs within
	// this distance of each other.
	PeeringRadiusKm float64
	PeeringProb     float64

	// SharedBlockProb is the probability that an interface is numbered out
	// of the AS's shared (cross-PoP) /24 pool instead of its PoP-local
	// block, producing the non-co-located blocks of §5.2.3.
	SharedBlockProb float64

	// CityJitterKm bounds how far a router sits from its city's centre.
	CityJitterKm float64

	// LinkStretch inflates link propagation delay over the great-circle
	// minimum (fibre does not follow geodesics).
	LinkStretch float64

	// Seeds pins named operators; nil means DefaultSeedASes.
	Seeds []SeedAS
	// GenericHintCoverage is the default fraction of hint-bearing
	// hostnames for synthetic operators' domains.
	GenericHintCoverage float64
}

// DefaultConfig returns the scale the experiments run at: a world of a few
// thousand routers and some tens of thousands of interfaces that builds in
// well under a second.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		ASes:            900,
		TransitFraction: 0.13,
		MultinationalFraction: map[geo.RIR]float64{
			geo.ARIN:    0.30,
			geo.RIPENCC: 0.30,
			geo.APNIC:   0.16,
			geo.LACNIC:  0.0,
			geo.AFRINIC: 0.10,
		},
		ForeignShare: 0.30,
		RIRWeights: map[geo.RIR]float64{
			geo.ARIN:    0.36,
			geo.RIPENCC: 0.33,
			geo.APNIC:   0.19,
			geo.LACNIC:  0.07,
			geo.AFRINIC: 0.05,
		},
		TransitPoPsMin:          4,
		TransitPoPsMax:          14,
		StubPoPsMax:             2,
		RoutersPerTransitPoPMax: 5,
		RoutersPerStubPoPMax:    6,
		ExtraIntraASLinkProb:    0.45,
		PeeringRadiusKm:         60,
		PeeringProb:             0.35,
		SharedBlockProb:         0.17,
		CityJitterKm:            12,
		LinkStretch:             1.5,
		Seeds:                   DefaultSeedASes(),
		GenericHintCoverage:     0.35,
	}
}

// DefaultSeedASes models the paper's seven ground-truth domains. PoP
// counts are scaled so the relative sizes of the per-domain address
// counts in §2.3.1 (cogent 6,462 … belwue 23) are preserved.
func DefaultSeedASes() []SeedAS {
	euBias := map[geo.RIR]float64{geo.RIPENCC: 0.8, geo.APNIC: 0.15, geo.LACNIC: 0.05}
	return []SeedAS{
		{
			ASN: 174, Name: "Cogent Communications", Domain: "cogentco.com",
			HQCountry: "US", HQCity: "Washington", RIR: geo.ARIN, Transit: true,
			PoPs: 48, ForeignShare: 0.34, ForeignRIRBias: euBias,
			HintScheme: "cogent", HintCoverage: 0.92, PoPRouters: 12,
		},
		{
			ASN: 2914, Name: "NTT Global IP Network", Domain: "ntt.net",
			HQCountry: "US", HQCity: "Dallas", RIR: geo.ARIN, Transit: true,
			PoPs: 26, ForeignShare: 0.38,
			ForeignRIRBias: map[geo.RIR]float64{geo.RIPENCC: 0.45, geo.APNIC: 0.45, geo.LACNIC: 0.1},
			HintScheme:     "ntt", HintCoverage: 0.92, PoPRouters: 10,
		},
		{
			// NTT's Asian backbone: same ntt.net rDNS zone, APNIC-registered
			// org — this is why the paper's DNS-based ground truth has an
			// APNIC column (560 addresses) although all seven domains belong
			// to US/EU-headquartered operators.
			ASN: 2915, Name: "NTT Asia", Domain: "ntt.net",
			HQCountry: "JP", HQCity: "Tokyo", RIR: geo.APNIC, Transit: true,
			PoPs: 10, ForeignShare: 0.30,
			ForeignRIRBias: map[geo.RIR]float64{geo.APNIC: 0.7, geo.RIPENCC: 0.15, geo.ARIN: 0.15},
			HintScheme:     "ntt", HintCoverage: 0.92, PoPRouters: 8,
		},
		{
			ASN: 6762, Name: "Telecom Italia Sparkle", Domain: "seabone.net",
			HQCountry: "IT", HQCity: "Rome", RIR: geo.RIPENCC, Transit: true,
			PoPs: 18, ForeignShare: 0.50,
			ForeignRIRBias: map[geo.RIR]float64{geo.RIPENCC: 0.55, geo.ARIN: 0.2, geo.LACNIC: 0.15, geo.APNIC: 0.1},
			HintScheme:     "seabone", HintCoverage: 0.90, PoPRouters: 9,
		},
		{
			ASN: 14744, Name: "Internap", Domain: "pnap.net",
			HQCountry: "US", HQCity: "Atlanta", RIR: geo.ARIN, Transit: true,
			PoPs: 16, ForeignShare: 0.12,
			ForeignRIRBias: map[geo.RIR]float64{geo.RIPENCC: 0.5, geo.APNIC: 0.5},
			HintScheme:     "pnap", HintCoverage: 0.90, PoPRouters: 10,
		},
		{
			ASN: 23317, Name: "Peak 10", Domain: "peak10.net",
			HQCountry: "US", HQCity: "Charlotte", RIR: geo.ARIN, Transit: false,
			PoPs: 5, ForeignShare: 0,
			HintScheme: "peak10", HintCoverage: 0.85, PoPRouters: 5,
		},
		{
			ASN: 7306, Name: "Digital West", Domain: "digitalwest.net",
			HQCountry: "US", HQCity: "San Luis Obispo", RIR: geo.ARIN, Transit: false,
			PoPs: 2, ForeignShare: 0,
			HintScheme: "digitalwest", HintCoverage: 0.85, PoPRouters: 3,
		},
		{
			ASN: 553, Name: "BelWue", Domain: "belwue.de",
			HQCountry: "DE", HQCity: "Stuttgart", RIR: geo.RIPENCC, Transit: false,
			PoPs: 3, ForeignShare: 0,
			HintScheme: "belwue", HintCoverage: 0.85, PoPRouters: 3,
		},
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.ASes == 0 {
		c.ASes = d.ASes
	}
	if c.TransitFraction == 0 {
		c.TransitFraction = d.TransitFraction
	}
	if c.MultinationalFraction == nil {
		c.MultinationalFraction = d.MultinationalFraction
	}
	if c.ForeignShare == 0 {
		c.ForeignShare = d.ForeignShare
	}
	if c.RIRWeights == nil {
		c.RIRWeights = d.RIRWeights
	}
	if c.TransitPoPsMin == 0 {
		c.TransitPoPsMin = d.TransitPoPsMin
	}
	if c.TransitPoPsMax == 0 {
		c.TransitPoPsMax = d.TransitPoPsMax
	}
	if c.StubPoPsMax == 0 {
		c.StubPoPsMax = d.StubPoPsMax
	}
	if c.RoutersPerTransitPoPMax == 0 {
		c.RoutersPerTransitPoPMax = d.RoutersPerTransitPoPMax
	}
	if c.RoutersPerStubPoPMax == 0 {
		c.RoutersPerStubPoPMax = d.RoutersPerStubPoPMax
	}
	if c.ExtraIntraASLinkProb == 0 {
		c.ExtraIntraASLinkProb = d.ExtraIntraASLinkProb
	}
	if c.PeeringRadiusKm == 0 {
		c.PeeringRadiusKm = d.PeeringRadiusKm
	}
	if c.PeeringProb == 0 {
		c.PeeringProb = d.PeeringProb
	}
	if c.SharedBlockProb == 0 {
		c.SharedBlockProb = d.SharedBlockProb
	}
	if c.CityJitterKm == 0 {
		c.CityJitterKm = d.CityJitterKm
	}
	if c.LinkStretch == 0 {
		c.LinkStretch = d.LinkStretch
	}
	if c.Seeds == nil {
		c.Seeds = d.Seeds
	}
	if c.GenericHintCoverage == 0 {
		c.GenericHintCoverage = d.GenericHintCoverage
	}
}
