package netsim

import (
	"fmt"
	"math/rand"

	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
	"routergeo/internal/ipx"
	"routergeo/internal/registry"
	"routergeo/internal/rtt"
)

// Build generates a world from cfg. Generation is deterministic for a
// given cfg (including cfg.Seed). It returns an error only when the
// registry pools are exhausted, which indicates the configuration asks for
// more world than the synthetic IPv4 plan can number.
func Build(cfg Config) (*World, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	b := &builder{
		cfg: cfg,
		rng: rng,
		w: &World{
			Cfg:         cfg,
			Gaz:         gazetteer.New(),
			Reg:         registry.New(nil),
			ifaceByAddr: make(map[ipx.Addr]IfaceID),
			blockOwner:  make(map[ipx.Addr]RouterID),
			blockCities: make(map[ipx.Addr]map[string]int),
		},
		linkSeen: make(map[[2]RouterID]bool),
	}

	if err := b.createASes(); err != nil {
		return nil, err
	}
	b.createRouters()
	if err := b.createLinks(); err != nil {
		return nil, err
	}
	b.buildAdjacency()
	if err := b.w.Reg.Freeze(); err != nil {
		return nil, err
	}
	return b.w, nil
}

type builder struct {
	cfg      Config
	rng      *rand.Rand
	w        *World
	addr     []*addrAssigner // parallel to w.ASes
	linkSeen map[[2]RouterID]bool
}

// createASes instantiates the seed operators plus synthetic ASes, chooses
// their PoP cities, and registers their organizations.
func (b *builder) createASes() error {
	for _, s := range b.cfg.Seeds {
		if err := b.addSeedAS(s); err != nil {
			return err
		}
	}
	for i := len(b.w.ASes); i < b.cfg.ASes; i++ {
		if err := b.addSyntheticAS(i); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) addSeedAS(s SeedAS) error {
	org := b.w.Reg.RegisterOrg(s.Name, s.HQCountry, s.HQCity, s.RIR)
	asn := registry.ASN(s.ASN)
	if err := b.w.Reg.BindAS(asn, org); err != nil {
		return err
	}
	if s.Transit {
		b.w.Reg.MarkTransit(asn)
	}
	as := AS{
		ASN: asn, Org: org, Name: s.Name, Domain: s.Domain, RIR: s.RIR,
		HomeCountry: s.HQCountry, HomeCity: s.HQCity,
		Transit: s.Transit, Multinational: s.ForeignShare > 0,
		HintScheme: s.HintScheme, HintCoverage: s.HintCoverage,
		RoutersPerPoPMax: s.PoPRouters,
	}
	foreign := int(float64(s.PoPs)*s.ForeignShare + 0.5)
	b.pickPoPs(&as, s.PoPs-foreign, foreign, s.ForeignRIRBias)
	b.w.ASes = append(b.w.ASes, as)
	b.addr = append(b.addr, newAddrAssigner(b.w, len(b.w.ASes)-1))
	return nil
}

func (b *builder) addSyntheticAS(i int) error {
	rir := b.sampleRIR(b.cfg.RIRWeights)
	home := b.w.Gaz.SampleCountry(b.rng, rir)
	transit := b.rng.Float64() < b.cfg.TransitFraction
	multinational := transit && b.rng.Float64() < b.cfg.MultinationalFraction[rir]

	asn := registry.ASN(64512 + i)
	name := fmt.Sprintf("AS%d Networks", asn)
	domain := fmt.Sprintf("as%d.net", asn)
	hqCity := b.w.Gaz.SampleCity(b.rng, home.ISO2)

	org := b.w.Reg.RegisterOrg(name, home.ISO2, hqCity.Name, rir)
	if err := b.w.Reg.BindAS(asn, org); err != nil {
		return err
	}
	if transit {
		b.w.Reg.MarkTransit(asn)
	}

	as := AS{
		ASN: asn, Org: org, Name: name, Domain: domain, RIR: rir,
		HomeCountry: home.ISO2, HomeCity: hqCity.Name,
		Transit: transit, Multinational: multinational,
		HintScheme:   "generic",
		HintCoverage: b.cfg.GenericHintCoverage * (0.5 + b.rng.Float64()),
	}

	var pops, foreign int
	if transit {
		pops = b.cfg.TransitPoPsMin + b.rng.Intn(b.cfg.TransitPoPsMax-b.cfg.TransitPoPsMin+1)
		if multinational {
			foreign = int(float64(pops)*b.cfg.ForeignShare + 0.5)
		}
	} else {
		pops = 1 + b.rng.Intn(b.cfg.StubPoPsMax)
	}
	// The HQ city is always the first PoP.
	as.PoPs = append(as.PoPs, PoP{City: hqCity})
	b.pickPoPsFrom(&as, pops-foreign-1, foreign, nil)
	b.w.ASes = append(b.w.ASes, as)
	b.addr = append(b.addr, newAddrAssigner(b.w, len(b.w.ASes)-1))
	return nil
}

// pickPoPs fills an AS's PoP list: the HQ city first, then domestic-1 more
// home-country cities, then foreign cities per the RIR bias.
func (b *builder) pickPoPs(as *AS, domestic, foreign int, bias map[geo.RIR]float64) {
	hq, ok := b.w.Gaz.City(as.HomeCountry, as.HomeCity)
	if !ok {
		hq = b.w.Gaz.SampleCity(b.rng, as.HomeCountry)
		as.HomeCity = hq.Name
	}
	as.PoPs = append(as.PoPs, PoP{City: hq})
	b.pickPoPsFrom(as, domestic-1, foreign, bias)
}

// pickPoPsFrom appends domestic home-country PoPs and foreign PoPs to an
// AS that already has its HQ PoP. Duplicate cities are skipped, so small
// countries can yield fewer PoPs than requested.
func (b *builder) pickPoPsFrom(as *AS, domestic, foreign int, bias map[geo.RIR]float64) {
	have := map[string]bool{}
	for _, p := range as.PoPs {
		have[p.City.Country+"/"+p.City.Name] = true
	}
	add := func(c gazetteer.City) bool {
		key := c.Country + "/" + c.Name
		if have[key] {
			return false
		}
		have[key] = true
		as.PoPs = append(as.PoPs, PoP{City: c})
		return true
	}
	for n, tries := 0, 0; n < domestic && tries < domestic*8+16; tries++ {
		if add(b.w.Gaz.SampleCity(b.rng, as.HomeCountry)) {
			n++
		}
	}
	if bias == nil {
		bias = map[geo.RIR]float64{geo.RIPENCC: 0.45, geo.ARIN: 0.2, geo.APNIC: 0.2, geo.LACNIC: 0.1, geo.AFRINIC: 0.05}
	}
	for n, tries := 0, 0; n < foreign && tries < foreign*8+16; tries++ {
		rir := b.sampleRIR(bias)
		country := b.w.Gaz.SampleCountry(b.rng, rir)
		if country.ISO2 == as.HomeCountry {
			continue
		}
		// Foreign operators rarely build PoPs in closed markets: Russian and
		// Chinese router space overwhelmingly belongs to domestic carriers,
		// which is why the paper's Figure 4 shows >94% country accuracy
		// there while open Western markets (FR, NL, DE) are full of
		// foreign-registered infrastructure and score far lower.
		if (country.ISO2 == "RU" || country.ISO2 == "CN") && b.rng.Float64() < 0.95 {
			continue
		}
		if add(b.w.Gaz.SampleCity(b.rng, country.ISO2)) {
			n++
		}
	}
}

func (b *builder) sampleRIR(weights map[geo.RIR]float64) geo.RIR {
	total := 0.0
	for _, r := range geo.RIRs {
		total += weights[r]
	}
	x := b.rng.Float64() * total
	for _, r := range geo.RIRs {
		x -= weights[r]
		if x < 0 {
			return r
		}
	}
	return geo.RIPENCC
}

// createRouters instantiates routers at every PoP with jittered positions.
func (b *builder) createRouters() {
	for ai := range b.w.ASes {
		as := &b.w.ASes[ai]
		maxR := b.cfg.RoutersPerStubPoPMax
		minR := 2 // access chains need depth below the PoP core
		if as.Transit {
			maxR = b.cfg.RoutersPerTransitPoPMax
		}
		if as.RoutersPerPoPMax > 0 {
			maxR = as.RoutersPerPoPMax
		}
		for pi := range as.PoPs {
			n := minR + b.rng.Intn(maxR-minR+1)
			// A PoP is one facility somewhere in the city; its routers sit
			// within a few hundred metres of each other. Keeping them
			// co-located matters: chained access hops must stay within the
			// sub-millisecond budget of the RTT-proximity method.
			site := as.PoPs[pi].City.Coord.Offset(b.rng.Float64()*b.cfg.CityJitterKm, b.rng.Float64()*360)
			for k := 0; k < n; k++ {
				id := RouterID(len(b.w.Routers))
				b.w.Routers = append(b.w.Routers, Router{
					ID: id, AS: ai, PoP: pi,
					Coord: site.Offset(b.rng.Float64()*0.4, b.rng.Float64()*360),
				})
				as.PoPs[pi].Routers = append(as.PoPs[pi].Routers, id)
			}
		}
	}
}

// createLinks wires the world together: intra-PoP stars, intra-AS rings
// with chords, a connected transit backbone, stub-to-transit uplinks, and
// geographically local transit peering.
func (b *builder) createLinks() error {
	// Intra-PoP and intra-AS.
	for ai := range b.w.ASes {
		as := &b.w.ASes[ai]
		cores := make([]RouterID, len(as.PoPs))
		for pi := range as.PoPs {
			rs := as.PoPs[pi].Routers
			cores[pi] = rs[0]
			if !as.Transit {
				// Access networks have aggregation depth: a chain from the
				// PoP core down to the access edge. Probes attach at the
				// leaf, so their first hops climb through the metro — the
				// topology behind the paper's observation that >80% of
				// RTT-proximate addresses are ≥2 hops from their probe.
				// Links are created leaf-first so the access /24's first
				// address (its traceroute terminus) sits on the leaf: probes
				// toward access space then traverse the whole chain, which
				// is what fills the real Ark dataset with aggregation-layer
				// interfaces.
				for k := len(rs) - 1; k >= 1; k-- {
					if err := b.link(rs[k], rs[k-1]); err != nil {
						return err
					}
				}
				continue
			}
			for _, r := range rs[1:] {
				if err := b.link(rs[0], r); err != nil {
					return err
				}
			}
			// Partial mesh inside larger PoPs: real PoPs dual-home their
			// aggregation routers, which is also what pushes the
			// interface-per-router ratio toward the paper's ~3.4.
			for i := 1; i < len(rs); i++ {
				for j := i + 1; j < len(rs); j++ {
					if b.rng.Float64() < 0.5 {
						if err := b.link(rs[i], rs[j]); err != nil {
							return err
						}
					}
				}
			}
		}
		for pi := 1; pi < len(cores); pi++ {
			if err := b.link(cores[pi-1], cores[pi]); err != nil {
				return err
			}
		}
		if len(cores) > 2 {
			if err := b.link(cores[len(cores)-1], cores[0]); err != nil {
				return err
			}
			for i := 0; i < len(cores); i++ {
				if b.rng.Float64() < b.cfg.ExtraIntraASLinkProb {
					j := b.rng.Intn(len(cores))
					if j != i {
						if err := b.link(cores[i], cores[j]); err != nil {
							return err
						}
					}
				}
			}
		}
	}

	var transit []int
	for ai := range b.w.ASes {
		if b.w.ASes[ai].Transit {
			transit = append(transit, ai)
		}
	}
	if len(transit) == 0 {
		return fmt.Errorf("netsim: no transit ASes; cannot build a connected world")
	}

	// Transit backbone: a random tree guarantees connectivity.
	for i := 1; i < len(transit); i++ {
		j := b.rng.Intn(i)
		if err := b.linkASes(transit[i], transit[j]); err != nil {
			return err
		}
	}
	// Local peering: transit pairs with PoPs in the same metro.
	for i := 0; i < len(transit); i++ {
		for j := i + 1; j < len(transit); j++ {
			ra, rb, d := b.closestPoPRouters(transit[i], transit[j])
			if d <= b.cfg.PeeringRadiusKm && b.rng.Float64() < b.cfg.PeeringProb {
				if err := b.link(ra, rb); err != nil {
					return err
				}
			}
		}
	}

	// Stub uplinks. Provider choice mixes geography with market share:
	// half the uplinks go to the geographically nearest transit PoP, the
	// rest to a size-weighted draw over the transit tier (large operators
	// like the seeded cogent/ntt carry most customers — which is also what
	// makes their per-customer interfaces dominate an Ark sweep, as the
	// paper's DNS ground truth does).
	weights := make([]int, len(transit))
	totalWeight := 0
	for i, ti := range transit {
		n := len(b.w.ASes[ti].PoPs)
		weights[i] = n * n
		if b.w.ASes[ti].RoutersPerPoPMax > 0 {
			// Seeded tier-1-style operators carry an outsized customer base.
			weights[i] *= 4
		}
		totalWeight += weights[i]
	}
	pickProvider := func(coord geo.Coordinate) RouterID {
		if b.rng.Float64() < 0.5 {
			best, bestD := RouterID(-1), 0.0
			for _, ti := range transit {
				r, d := b.nearestRouterInAS(ti, coord)
				if best < 0 || d < bestD {
					best, bestD = r, d
				}
			}
			return best
		}
		x := b.rng.Intn(totalWeight)
		for i, ti := range transit {
			x -= weights[i]
			if x < 0 {
				r, _ := b.nearestRouterInAS(ti, coord)
				return r
			}
		}
		r, _ := b.nearestRouterInAS(transit[len(transit)-1], coord)
		return r
	}
	for ai := range b.w.ASes {
		as := &b.w.ASes[ai]
		if as.Transit {
			continue
		}
		core := as.PoPs[0].Routers[0]
		first := pickProvider(b.w.Routers[core].Coord)
		if err := b.link(core, first); err != nil {
			return err
		}
		if b.rng.Float64() < 0.5 {
			if r := pickProvider(b.w.Routers[core].Coord); r != first {
				if err := b.link(core, r); err != nil {
					return err
				}
			}
		}
		// Multi-PoP stubs uplink their secondary PoPs too.
		for pi := 1; pi < len(as.PoPs); pi++ {
			c := as.PoPs[pi].Routers[0]
			if err := b.link(c, pickProvider(b.w.Routers[c].Coord)); err != nil {
				return err
			}
		}
	}
	return nil
}

// linkASes links two ASes at their closest PoP pair.
func (b *builder) linkASes(ai, aj int) error {
	ra, rb, _ := b.closestPoPRouters(ai, aj)
	return b.link(ra, rb)
}

// closestPoPRouters returns the core-router pair minimizing the distance
// between two ASes' PoPs.
func (b *builder) closestPoPRouters(ai, aj int) (RouterID, RouterID, float64) {
	A, B := &b.w.ASes[ai], &b.w.ASes[aj]
	var ra, rb RouterID
	best := -1.0
	for _, pa := range A.PoPs {
		for _, pb := range B.PoPs {
			d := pa.City.Coord.DistanceKm(pb.City.Coord)
			if best < 0 || d < best {
				best = d
				ra, rb = pa.Routers[0], pb.Routers[0]
			}
		}
	}
	return ra, rb, best
}

// nearestRouterInAS returns a router in the AS's PoP closest to p.
// Customer links terminate on a random router of the PoP, not always the
// core: real PoPs land customers on edge routers, and the resulting path
// diversity is what lets an Ark-style sweep observe a transit operator's
// many per-customer interfaces (the bulk of the paper's DNS ground truth).
func (b *builder) nearestRouterInAS(ai int, p geo.Coordinate) (RouterID, float64) {
	as := &b.w.ASes[ai]
	bestPoP := -1
	best := -1.0
	for pi, pop := range as.PoPs {
		d := pop.City.Coord.DistanceKm(p)
		if best < 0 || d < best {
			best, bestPoP = d, pi
		}
	}
	rs := as.PoPs[bestPoP].Routers
	return rs[b.rng.Intn(len(rs))], best
}

// link installs an undirected link between two routers, numbering one new
// interface on each side from its own AS's address plan. Duplicate links
// and self-links are silently skipped.
func (b *builder) link(x, y RouterID) error {
	if x == y {
		return nil
	}
	key := [2]RouterID{x, y}
	if x > y {
		key = [2]RouterID{y, x}
	}
	if b.linkSeen[key] {
		return nil
	}
	b.linkSeen[key] = true

	rx, ry := &b.w.Routers[x], &b.w.Routers[y]
	ax, err := b.addr[rx.AS].next(rx.PoP, b.rng)
	if err != nil {
		return err
	}
	ay, err := b.addr[ry.AS].next(ry.PoP, b.rng)
	if err != nil {
		return err
	}

	linkIdx := int32(len(b.w.Links))
	ifx := b.newIface(ax, x, linkIdx)
	ify := b.newIface(ay, y, linkIdx)

	d := rx.Coord.DistanceKm(ry.Coord)
	stretch := b.cfg.LinkStretch
	if d < 60 {
		// Metro links run on near-direct dark fibre; long-haul routes
		// detour much more. Keeping metro crossings fast lets the 0.5 ms
		// proximity rule reach the transit routers of a city, as it does
		// in the paper's data.
		stretch = 1.1
	}
	oneWay := d/rtt.KmPerMsOneWay*stretch + 0.02
	b.w.Links = append(b.w.Links, Link{A: x, B: y, AIface: ifx, BIface: ify, OneWayMs: oneWay})
	return nil
}

func (b *builder) newIface(a ipx.Addr, r RouterID, link int32) IfaceID {
	id := IfaceID(len(b.w.Interfaces))
	b.w.Interfaces = append(b.w.Interfaces, Interface{ID: id, Addr: a, Router: r, Link: link})
	b.w.ifaceByAddr[a] = id
	b.w.Routers[r].Ifaces = append(b.w.Routers[r].Ifaces, id)

	// Track /24 block ownership and city spread for the §5.2.3 analyses.
	base := a.Slash24().Base
	if _, ok := b.w.blockOwner[base]; !ok {
		b.w.blockOwner[base] = r
	}
	city := b.w.CityOf(id)
	set := b.w.blockCities[base]
	if set == nil {
		set = make(map[string]int, 1)
		b.w.blockCities[base] = set
	}
	set[city.Country+"/"+city.Name]++
	return id
}

func (b *builder) buildAdjacency() {
	b.w.adj = make([][]Hop, len(b.w.Routers))
	for _, l := range b.w.Links {
		b.w.adj[l.A] = append(b.w.adj[l.A], Hop{Peer: l.B, PeerIface: l.BIface, OneWayMs: l.OneWayMs})
		b.w.adj[l.B] = append(b.w.adj[l.B], Hop{Peer: l.A, PeerIface: l.AIface, OneWayMs: l.OneWayMs})
	}
}

// addrAssigner numbers an AS's interfaces. Each PoP draws from its own
// current /24; with Config.SharedBlockProb an address comes from the AS's
// shared /24 instead, which therefore accumulates interfaces from many
// cities — the non-co-located blocks behind §5.2.3. Fresh /24s are carved
// from registry delegations requested on demand.
type addrAssigner struct {
	w      *World
	asIdx  int
	super  *ipx.Allocator
	perPoP map[int]*blockCursor
	shared *blockCursor
}

type blockCursor struct {
	prefix ipx.Prefix
	next   ipx.Addr
}

func newAddrAssigner(w *World, asIdx int) *addrAssigner {
	return &addrAssigner{w: w, asIdx: asIdx, perPoP: make(map[int]*blockCursor)}
}

func (a *addrAssigner) next(pop int, rng *rand.Rand) (ipx.Addr, error) {
	cur := a.perPoP[pop]
	useShared := rng.Float64() < a.w.Cfg.SharedBlockProb
	if useShared {
		if a.shared == nil || a.shared.exhausted() {
			blk, err := a.newSlash24()
			if err != nil {
				return 0, err
			}
			a.shared = blk
		}
		return a.shared.take(), nil
	}
	if cur == nil || cur.exhausted() {
		blk, err := a.newSlash24()
		if err != nil {
			return 0, err
		}
		a.perPoP[pop] = blk
		cur = blk
	}
	return cur.take(), nil
}

// newSlash24 carves the next /24 from the AS's current registry
// delegation, requesting a fresh delegation when exhausted. Transit
// operators receive /19s, stubs /22s, approximating real allocation sizes.
func (a *addrAssigner) newSlash24() (*blockCursor, error) {
	if a.super != nil {
		if p, ok := a.super.Alloc(24); ok {
			return &blockCursor{prefix: p, next: p.Base + 1}, nil
		}
	}
	as := &a.w.ASes[a.asIdx]
	bits := uint8(22)
	if as.Transit {
		bits = 19
	}
	p, err := a.w.Reg.Allocate(as.Org, as.ASN, bits)
	if err != nil {
		return nil, err
	}
	as.Prefixes = append(as.Prefixes, p)
	a.super = ipx.NewAllocator(p)
	q, ok := a.super.Alloc(24)
	if !ok {
		return nil, fmt.Errorf("netsim: fresh delegation %v yielded no /24", p)
	}
	return &blockCursor{prefix: q, next: q.Base + 1}, nil
}

// exhausted reports whether the cursor has used .1 through .254; .0 and
// .255 are never assigned.
func (c *blockCursor) exhausted() bool { return c.next > c.prefix.Base+254 }

func (c *blockCursor) take() ipx.Addr {
	a := c.next
	c.next++
	return a
}
