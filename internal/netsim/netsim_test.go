package netsim

import (
	"math"
	"math/rand"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/ipx"
)

// smallConfig builds quickly; used by most tests.
func smallConfig(seed int64) Config {
	c := DefaultConfig()
	c.Seed = seed
	c.ASes = 120
	return c
}

// buildSmall caches one small world per seed across tests in this package.
var worldCache = map[int64]*World{}

func buildSmall(t *testing.T, seed int64) *World {
	t.Helper()
	if w, ok := worldCache[seed]; ok {
		return w
	}
	w, err := Build(smallConfig(seed))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	worldCache[seed] = w
	return w
}

func TestBuildValidates(t *testing.T) {
	w := buildSmall(t, 1)
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRouters() != b.NumRouters() || a.NumInterfaces() != b.NumInterfaces() || a.NumLinks() != b.NumLinks() {
		t.Fatalf("same seed, different worlds: %d/%d/%d vs %d/%d/%d",
			a.NumRouters(), a.NumInterfaces(), a.NumLinks(),
			b.NumRouters(), b.NumInterfaces(), b.NumLinks())
	}
	for i := range a.Interfaces {
		if a.Interfaces[i].Addr != b.Interfaces[i].Addr {
			t.Fatalf("interface %d address differs", i)
		}
	}
}

func TestSeedASesPresent(t *testing.T) {
	w := buildSmall(t, 1)
	want := map[string]bool{
		"cogentco.com": false, "ntt.net": false, "seabone.net": false,
		"pnap.net": false, "peak10.net": false, "digitalwest.net": false,
		"belwue.de": false,
	}
	for i := range w.ASes {
		if _, ok := want[w.ASes[i].Domain]; ok {
			want[w.ASes[i].Domain] = true
		}
	}
	for d, found := range want {
		if !found {
			t.Errorf("seed domain %s missing from world", d)
		}
	}
}

func TestSeedASFootprints(t *testing.T) {
	w := buildSmall(t, 1)
	for i := range w.ASes {
		as := &w.ASes[i]
		switch as.Domain {
		case "cogentco.com":
			if !as.Transit || !as.Multinational {
				t.Error("cogent must be multinational transit")
			}
			foreign := 0
			for _, p := range as.PoPs {
				if p.City.Country != "US" {
					foreign++
				}
			}
			if foreign == 0 {
				t.Error("cogent has no foreign PoPs; registry-bias experiments need them")
			}
			if as.RIR != geo.ARIN {
				t.Error("cogent must be ARIN-registered")
			}
		case "belwue.de":
			for _, p := range as.PoPs {
				if p.City.Country != "DE" {
					t.Errorf("belwue PoP outside Germany: %s/%s", p.City.Country, p.City.Name)
				}
			}
		}
	}
}

func TestInterfacesPerRouterRatio(t *testing.T) {
	// The paper's Ark/ITDK data implies ~3.4 interfaces per router; our
	// link-driven interface creation should land in the same regime.
	w := buildSmall(t, 1)
	ratio := float64(w.NumInterfaces()) / float64(w.NumRouters())
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("interfaces per router = %.2f, want 1.5-6", ratio)
	}
}

func TestAddressesUniqueAndRegistered(t *testing.T) {
	w := buildSmall(t, 1)
	seen := map[ipx.Addr]bool{}
	for i := range w.Interfaces {
		a := w.Interfaces[i].Addr
		if seen[a] {
			t.Fatalf("duplicate address %v", a)
		}
		seen[a] = true
		if b := a & 0xff; b == 0 || b == 255 {
			t.Fatalf("network/broadcast address assigned: %v", a)
		}
		alloc, org, ok := w.Reg.Whois(a)
		if !ok {
			t.Fatalf("interface address %v not in whois", a)
		}
		as := w.ASOfIface(w.Interfaces[i].ID)
		if alloc.ASN != as.ASN {
			t.Fatalf("address %v registered to AS%d, interface belongs to AS%d", a, alloc.ASN, as.ASN)
		}
		if org.RIR != as.RIR {
			t.Fatalf("address %v org RIR %v != AS RIR %v", a, org.RIR, as.RIR)
		}
	}
}

func TestBlockCityTracking(t *testing.T) {
	w := buildSmall(t, 1)
	shared, single := 0, 0
	for _, p := range w.RoutedSlash24s() {
		switch n := w.BlockCityCount(p.Base); {
		case n > 1:
			shared++
		case n == 1:
			single++
		default:
			t.Fatalf("block %v has zero cities", p)
		}
	}
	if shared == 0 {
		t.Error("no cross-city /24 blocks; §5.2.3's block-level error source is missing")
	}
	if single == 0 {
		t.Error("no co-located /24 blocks at all")
	}
	if shared > single {
		t.Errorf("cross-city blocks (%d) outnumber co-located ones (%d); world is unrealistic", shared, single)
	}
}

func TestDestRouterFor(t *testing.T) {
	w := buildSmall(t, 1)
	// Exact interface address resolves to its own router.
	ifc := w.Interfaces[0]
	r, ok := w.DestRouterFor(ifc.Addr)
	if !ok || r != ifc.Router {
		t.Errorf("DestRouterFor(exact) = %v, %v", r, ok)
	}
	// A random address in the same /24 resolves to the block owner.
	other := ifc.Addr.Slash24().Base + 250
	if _, ok := w.DestRouterFor(other); !ok {
		t.Error("DestRouterFor should resolve any address in a routed /24")
	}
	// Unrouted space misses.
	if _, ok := w.DestRouterFor(ipx.MustParseAddr("203.0.113.1")); ok {
		t.Error("DestRouterFor should miss unrouted space")
	}
}

func TestNearestRouter(t *testing.T) {
	w := buildSmall(t, 1)
	// Nearest router to Frankfurt restricted to DE must be in Germany.
	fra, _ := w.Gaz.City("DE", "Frankfurt")
	r, ok := w.NearestRouter(fra.Coord, "DE")
	if !ok {
		t.Fatal("no router found")
	}
	if got := w.ASes[w.Routers[r].AS].PoPs[w.Routers[r].PoP].City.Country; got != "DE" {
		t.Errorf("country-restricted nearest router is in %s", got)
	}
	// Unrestricted search returns someone at least as close.
	rAny, _ := w.NearestRouter(fra.Coord, "")
	if w.Routers[rAny].Coord.DistanceKm(fra.Coord) > w.Routers[r].Coord.DistanceKm(fra.Coord)+1e-9 {
		t.Error("unrestricted nearest farther than restricted nearest")
	}
}

func TestRouterJitterBounded(t *testing.T) {
	w := buildSmall(t, 1)
	for i := range w.Routers {
		r := &w.Routers[i]
		city := w.ASes[r.AS].PoPs[r.PoP].City
		if d := r.Coord.DistanceKm(city.Coord); d > w.Cfg.CityJitterKm+0.5 {
			t.Fatalf("router %d is %.1f km from its city centre (max %v)", i, d, w.Cfg.CityJitterKm)
		}
	}
}

func TestLinkDelaysRespectGeography(t *testing.T) {
	w := buildSmall(t, 1)
	for i, l := range w.Links {
		d := w.Routers[l.A].Coord.DistanceKm(w.Routers[l.B].Coord)
		min := d / 200 // fibre floor, one-way
		if l.OneWayMs < min-1e-9 {
			t.Fatalf("link %d one-way %.3f ms beats light in fibre for %.1f km", i, l.OneWayMs, d)
		}
	}
}

func TestTransitSharePlausible(t *testing.T) {
	w := buildSmall(t, 1)
	transit := 0
	for i := range w.ASes {
		if w.ASes[i].Transit {
			transit++
		}
	}
	frac := float64(transit) / float64(len(w.ASes))
	if frac < 0.05 || frac > 0.4 {
		t.Errorf("transit AS fraction = %.2f, want 0.05-0.4", frac)
	}
	// Transit ASes must be flagged in the registry for the Table 1 analysis.
	for i := range w.ASes {
		if w.ASes[i].Transit != w.Reg.IsTransit(w.ASes[i].ASN) {
			t.Fatalf("AS%d transit flag mismatch with registry", w.ASes[i].ASN)
		}
	}
}

func TestMultinationalPlacement(t *testing.T) {
	w := buildSmall(t, 1)
	// Multinational ASes must actually have foreign PoPs, and LACNIC
	// synthetic orgs must not be multinational (Figure 3 shows 0% wrong
	// country there).
	for i := range w.ASes {
		as := &w.ASes[i]
		foreign := 0
		for _, p := range as.PoPs {
			if p.City.Country != as.HomeCountry {
				foreign++
			}
		}
		if as.Multinational && foreign == 0 {
			t.Errorf("AS%d flagged multinational but has no foreign PoPs", as.ASN)
		}
		if !as.Multinational && foreign > 0 {
			t.Errorf("AS%d not multinational but has %d foreign PoPs", as.ASN, foreign)
		}
		if as.RIR == geo.LACNIC && as.Domain != "seabone.net" && as.Multinational {
			t.Errorf("LACNIC AS%d is multinational; config says none should be", as.ASN)
		}
	}
}

func TestWorldScaleDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size world build")
	}
	w, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumInterfaces() < 5000 {
		t.Errorf("default world has only %d interfaces; experiments need thousands", w.NumInterfaces())
	}
	if w.NumRouters() < 1500 {
		t.Errorf("default world has only %d routers", w.NumRouters())
	}
}

func TestEvolutionRatesMatchPaper(t *testing.T) {
	w := buildSmall(t, 1)
	e := w.Evolve(rand.New(rand.NewSource(2)), DefaultEvolutionParams())
	n := float64(w.NumInterfaces())
	var moved, renamed, lost int
	for i := range w.Interfaces {
		id := IfaceID(i)
		if e.Moved(id, 16) {
			moved++
		}
		if e.Renamed(id, 16) {
			renamed++
		}
		if e.RDNSLost(id, 16) {
			lost++
		}
	}
	// Paper (§3.1): 7.4% moved, 24% renamed, 6.9% lost over 16 months.
	if f := float64(moved) / n; f < 0.05 || f > 0.12 {
		t.Errorf("moved fraction at 16 months = %.3f, want ~0.074", f)
	}
	if f := float64(renamed) / n; f < 0.17 || f > 0.31 {
		t.Errorf("renamed fraction at 16 months = %.3f, want ~0.24", f)
	}
	if f := float64(lost) / n; f < 0.045 || f > 0.10 {
		t.Errorf("lost fraction at 16 months = %.3f, want ~0.069", f)
	}
}

func TestEvolutionMonotonicAndConsistent(t *testing.T) {
	w := buildSmall(t, 1)
	e := w.Evolve(rand.New(rand.NewSource(3)), DefaultEvolutionParams())
	for i := range w.Interfaces {
		id := IfaceID(i)
		if e.Moved(id, 10) && !e.Moved(id, 16) {
			t.Fatal("a move cannot un-happen")
		}
		if e.RDNSLost(id, 10) && !e.RDNSLost(id, 16) {
			t.Fatal("rDNS loss cannot un-happen")
		}
		if !e.Moved(id, 10) {
			if e.CityAt(id, 10) != w.CityOf(id) {
				t.Fatal("unmoved interface changed city")
			}
		} else if e.CityAt(id, 10) == w.CityOf(id) {
			t.Fatal("moved interface kept its city")
		}
		if e.HintStale(id, 16) && e.Renamed(id, 16) && e.renameAt[id] > 16 {
			t.Fatal("stale-hint move must not count as renamed")
		}
	}
}

func TestEvolutionAtZeroIsIdentity(t *testing.T) {
	w := buildSmall(t, 1)
	e := w.Evolve(rand.New(rand.NewSource(4)), DefaultEvolutionParams())
	for i := 0; i < w.NumInterfaces(); i += 97 {
		id := IfaceID(i)
		if e.Moved(id, 0) || e.Renamed(id, 0) || e.RDNSLost(id, 0) {
			t.Fatal("no churn may have happened at month 0")
		}
		if e.CityAt(id, 0) != w.CityOf(id) || e.CoordAt(id, 0) != w.CoordOf(id) {
			t.Fatal("view at month 0 must equal the original world")
		}
	}
}

func TestRoutedSlash24sCoverInterfaces(t *testing.T) {
	w := buildSmall(t, 1)
	blocks := map[ipx.Addr]bool{}
	for _, p := range w.RoutedSlash24s() {
		blocks[p.Base] = true
	}
	for i := range w.Interfaces {
		if !blocks[w.Interfaces[i].Addr.Slash24().Base] {
			t.Fatalf("interface %v's /24 missing from RoutedSlash24s", w.Interfaces[i].Addr)
		}
	}
}

func TestEvolutionZeroRatesNeverChurn(t *testing.T) {
	w := buildSmall(t, 1)
	e := w.Evolve(rand.New(rand.NewSource(6)), EvolutionParams{})
	for i := 0; i < w.NumInterfaces(); i += 31 {
		id := IfaceID(i)
		if e.Moved(id, 1e6) || e.Renamed(id, 1e6) || e.RDNSLost(id, 1e6) {
			t.Fatal("zero-rate evolution produced churn")
		}
	}
}

func TestBlockCitiesConsistent(t *testing.T) {
	w := buildSmall(t, 1)
	for _, p := range w.RoutedSlash24s()[:50] {
		cities := w.BlockCities(p.Base)
		if len(cities) != w.BlockCityCount(p.Base) {
			t.Fatalf("BlockCities (%d) disagrees with BlockCityCount (%d)",
				len(cities), w.BlockCityCount(p.Base))
		}
		maj, ok := w.BlockMajorityCity(p.Base)
		if !ok {
			t.Fatal("routed block has no majority city")
		}
		found := false
		for _, c := range cities {
			if c.Country == maj.Country && c.Name == maj.Name {
				found = true
			}
		}
		if !found {
			t.Fatal("majority city not among the block's cities")
		}
	}
	if cities := w.BlockCities(ipx.MustParseAddr("203.0.113.0")); len(cities) != 0 {
		t.Errorf("unrouted block has cities: %v", cities)
	}
}

func TestNearestRouterFuncNoneAccepted(t *testing.T) {
	w := buildSmall(t, 1)
	if _, ok := w.NearestRouterFunc(w.Routers[0].Coord, func(RouterID) bool { return false }); ok {
		t.Error("rejecting predicate should find nothing")
	}
}

func TestSeedPoPRouterOverride(t *testing.T) {
	// The seeded operators' RoutersPerPoPMax must actually take effect:
	// cogent PoPs should frequently exceed the synthetic transit cap.
	w := buildSmall(t, 1)
	cap := w.Cfg.RoutersPerTransitPoPMax
	exceeded := false
	for i := range w.ASes {
		as := &w.ASes[i]
		if as.Domain != "cogentco.com" {
			continue
		}
		for _, p := range as.PoPs {
			if len(p.Routers) > cap {
				exceeded = true
			}
		}
	}
	if !exceeded {
		t.Errorf("no cogent PoP exceeds the synthetic cap %d; PoPRouters override inert", cap)
	}
}

func TestFillDefaultsPreservesExplicit(t *testing.T) {
	cfg := Config{Seed: 5, ASes: 42, TransitFraction: 0.5, CityJitterKm: 3}
	cfg.fillDefaults()
	if cfg.ASes != 42 || cfg.TransitFraction != 0.5 || cfg.CityJitterKm != 3 {
		t.Errorf("explicit values overwritten: %+v", cfg)
	}
	if cfg.TransitPoPsMax == 0 || cfg.Seeds == nil || cfg.RIRWeights == nil {
		t.Error("zero fields not defaulted")
	}
}

func TestPeerIfaceInvolution(t *testing.T) {
	w := buildSmall(t, 1)
	for i := 0; i < w.NumInterfaces(); i += 17 {
		id := IfaceID(i)
		peer := w.PeerIface(id)
		if w.PeerIface(peer) != id {
			t.Fatalf("PeerIface not an involution at %d", id)
		}
		if w.Interfaces[peer].Router == w.Interfaces[id].Router {
			t.Fatalf("link %d connects a router to itself", w.Interfaces[id].Link)
		}
	}
}

func TestEvolutionPinnedMarginals(t *testing.T) {
	w, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := w.Evolve(rand.New(rand.NewSource(11)), DefaultEvolutionParams())
	n := float64(w.NumInterfaces())
	var moved, renamed, lost int
	for i := range w.Interfaces {
		id := IfaceID(i)
		if e.Moved(id, 16) {
			moved++
		}
		if e.Renamed(id, 16) {
			renamed++
		}
		if e.RDNSLost(id, 16) {
			lost++
		}
	}
	// The defaults must reproduce the paper's 16-month marginals (§3.1)
	// as marginals, not as raw hazard inputs: Renamed is the union of
	// in-place renames and updated-hostname moves, so its calibration is
	// backed out of the 24% rather than fed in directly. Tolerances are
	// ~3σ for the default world's interface count.
	check := func(what string, got int, want, tol float64) {
		t.Helper()
		if f := float64(got) / n; math.Abs(f-want) > tol {
			t.Errorf("%s fraction at 16 months = %.4f, want %.3f ± %.3f", what, f, want, tol)
		}
	}
	check("moved", moved, 0.074, 0.015)
	check("renamed", renamed, 0.24, 0.025)
	check("lost", lost, 0.069, 0.015)
}

func TestEvolutionHorizonDeterminism(t *testing.T) {
	w := buildSmall(t, 1)
	e := w.Evolve(rand.New(rand.NewSource(7)), DefaultEvolutionParams())
	horizons := []float64{0, 10, 16}
	for i := range w.Interfaces {
		id := IfaceID(i)
		for k := 1; k < len(horizons); k++ {
			prev, cur := horizons[k-1], horizons[k]
			if e.RDNSLost(id, prev) && !e.RDNSLost(id, cur) {
				t.Fatalf("iface %d: lost at +%v but present at +%v", i, prev, cur)
			}
			if e.Moved(id, prev) {
				if e.CoordAt(id, prev) != e.CoordAt(id, cur) {
					t.Fatalf("iface %d: move destination drifted between +%v and +%v", i, prev, cur)
				}
				if e.CityAt(id, prev) != e.CityAt(id, cur) {
					t.Fatalf("iface %d: destination city drifted between +%v and +%v", i, prev, cur)
				}
			}
		}
		// Re-querying the same horizon is a pure read.
		if e.CoordAt(id, 10) != e.CoordAt(id, 10) || e.Renamed(id, 16) != e.Renamed(id, 16) {
			t.Fatalf("iface %d: repeated queries disagree", i)
		}
	}
}

func TestBlockMajorityCityAtZeroMatchesWorld(t *testing.T) {
	w := buildSmall(t, 1)
	e := w.Evolve(rand.New(rand.NewSource(8)), DefaultEvolutionParams())
	for _, p := range w.RoutedSlash24s() {
		want, wok := w.BlockMajorityCity(p.Base)
		got, gok := e.BlockMajorityCityAt(p.Base, 0)
		if wok != gok || got != want {
			t.Fatalf("block %v: BlockMajorityCityAt(0) = %v,%v; World says %v,%v",
				p.Base, got, gok, want, wok)
		}
	}
	if _, ok := e.BlockMajorityCityAt(0, 0); ok {
		t.Fatal("unrouted block reported a majority city")
	}
}

func TestBlockMajorityCityAtReflectsMoves(t *testing.T) {
	w := buildSmall(t, 1)
	e := w.Evolve(rand.New(rand.NewSource(9)), DefaultEvolutionParams())
	changed := 0
	for _, p := range w.RoutedSlash24s() {
		a, _ := e.BlockMajorityCityAt(p.Base, 0)
		b, _ := e.BlockMajorityCityAt(p.Base, 1e6)
		if a != b {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no block majority changed even at a huge horizon; moves not applied")
	}
}
