// Package netsim builds and holds the synthetic Internet the whole
// reproduction measures: autonomous systems with points of presence in
// real-world cities, routers with link-attached interfaces, IPv4
// allocations delegated through internal/registry, and a connected link
// graph with geographically derived delays.
//
// The world substitutes for the live Internet that CAIDA Ark and RIPE
// Atlas measured in the paper. Its essential property is that *truth is
// known exactly*: every interface has a definite location, so the
// evaluation in internal/core can score databases without the paper's
// ground-truth uncertainty. The generator deliberately plants the
// phenomena the paper attributes its findings to:
//
//   - multinational organizations register all address space at their
//     headquarters while operating PoPs abroad (the registry-bias error
//     source behind §5.2.2 and §5.2.3);
//   - a fraction of /24 blocks are assigned across PoPs, so block-level
//     location records cannot be right for every interface (§5.2.3);
//   - seven operator domains with DNS-decodable location hints, matching
//     the paper's DNS-based ground-truth domains (§2.3.1).
package netsim

import (
	"fmt"
	"sort"
	"strings"

	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
	"routergeo/internal/ipx"
	"routergeo/internal/registry"
)

// RouterID indexes a router within a World.
type RouterID int32

// IfaceID indexes an interface within a World.
type IfaceID int32

// PoP is one point of presence: a city where an AS operates routers.
type PoP struct {
	City    gazetteer.City
	Routers []RouterID
}

// AS is one autonomous system in the world.
type AS struct {
	ASN           registry.ASN
	Org           registry.OrgID
	Name          string
	Domain        string // rDNS suffix for this operator's router names
	RIR           geo.RIR
	HomeCountry   string // ISO2 of the headquarters
	HomeCity      string
	Transit       bool
	Multinational bool
	// HintScheme names the hostname grammar internal/rdns uses for this
	// operator; HintCoverage is the fraction of its interfaces whose
	// hostnames embed a decodable location hint.
	HintScheme   string
	HintCoverage float64
	// RoutersPerPoPMax overrides the config cap for this AS (0 = default).
	RoutersPerPoPMax int
	PoPs             []PoP
	Prefixes         []ipx.Prefix // registry delegations
}

// Router is one router, pinned to a PoP with a jittered position inside
// the PoP's city.
type Router struct {
	ID     RouterID
	AS     int // index into World.ASes
	PoP    int // index into AS.PoPs
	Coord  geo.Coordinate
	Ifaces []IfaceID
}

// Interface is one numbered router interface. Interfaces are created in
// pairs when links are installed, so the interface-per-router ratio lands
// near the ~3.4 the paper's ITDK alias data implies.
type Interface struct {
	ID     IfaceID
	Addr   ipx.Addr
	Router RouterID
	Link   int32 // index into World.Links
}

// Link is an undirected adjacency between two routers with a fixed one-way
// propagation delay.
type Link struct {
	A, B           RouterID
	AIface, BIface IfaceID
	OneWayMs       float64
}

// Hop is one adjacency as seen from a specific router, used by the
// traceroute engine: crossing to Peer reveals PeerIface (the ingress
// interface) and costs OneWayMs of propagation each way.
type Hop struct {
	Peer      RouterID
	PeerIface IfaceID
	OneWayMs  float64
}

// World is the fully built synthetic Internet. It is immutable after
// Build and safe for concurrent readers.
type World struct {
	Cfg Config
	Gaz *gazetteer.Gazetteer
	Reg *registry.Registry

	ASes       []AS
	Routers    []Router
	Interfaces []Interface
	Links      []Link

	adj         [][]Hop
	ifaceByAddr map[ipx.Addr]IfaceID
	blockOwner  map[ipx.Addr]RouterID       // /24 base -> first router numbered from it
	blockCities map[ipx.Addr]map[string]int // /24 base -> interface count per "cc/city" key
}

// NumASes etc. give the world's scale.
func (w *World) NumASes() int       { return len(w.ASes) }
func (w *World) NumRouters() int    { return len(w.Routers) }
func (w *World) NumInterfaces() int { return len(w.Interfaces) }
func (w *World) NumLinks() int      { return len(w.Links) }

// ASOfRouter returns the AS operating a router.
func (w *World) ASOfRouter(r RouterID) *AS { return &w.ASes[w.Routers[r].AS] }

// ASOfIface returns the AS operating an interface.
func (w *World) ASOfIface(i IfaceID) *AS { return w.ASOfRouter(w.Interfaces[i].Router) }

// RouterOf returns the router an interface belongs to.
func (w *World) RouterOf(i IfaceID) *Router { return &w.Routers[w.Interfaces[i].Router] }

// CityOf returns the city a router interface is located in — the exact
// truth the evaluation scores databases against.
func (w *World) CityOf(i IfaceID) gazetteer.City {
	r := w.RouterOf(i)
	return w.ASes[r.AS].PoPs[r.PoP].City
}

// CoordOf returns the interface's precise coordinates (its router's
// jittered position).
func (w *World) CoordOf(i IfaceID) geo.Coordinate { return w.RouterOf(i).Coord }

// CountryOf returns the ISO2 country code of an interface's location.
func (w *World) CountryOf(i IfaceID) string { return w.CityOf(i).Country }

// IfaceByAddr resolves an address to its interface.
func (w *World) IfaceByAddr(a ipx.Addr) (IfaceID, bool) {
	id, ok := w.ifaceByAddr[a]
	return id, ok
}

// Neighbors returns a router's adjacencies. The returned slice is shared;
// callers must not modify it.
func (w *World) Neighbors(r RouterID) []Hop { return w.adj[r] }

// DestRouterFor returns the router a probe toward addr will terminate at:
// the owner of the address's /24 (Ark probes random addresses inside
// routed /24s; the reply comes from the block's router). ok is false for
// unrouted space.
func (w *World) DestRouterFor(a ipx.Addr) (RouterID, bool) {
	if id, ok := w.ifaceByAddr[a]; ok {
		return w.Interfaces[id].Router, true
	}
	r, ok := w.blockOwner[a.Slash24().Base]
	return r, ok
}

// RoutedSlash24s returns the base address of every /24 with at least one
// numbered interface, in ascending base-address order so downstream
// seeded sampling (Ark target selection, vendor feeds) is reproducible
// without each caller re-sorting.
func (w *World) RoutedSlash24s() []ipx.Prefix {
	out := make([]ipx.Prefix, 0, len(w.blockOwner))
	for base := range w.blockOwner {
		out = append(out, ipx.Prefix{Base: base, Bits: 24})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// BlockCityCount returns how many distinct cities the interfaces of addr's
// /24 block sit in. A count above 1 means block-level location records are
// necessarily wrong for part of the block — the §5.2.3 mechanism.
func (w *World) BlockCityCount(a ipx.Addr) int {
	return len(w.blockCities[a.Slash24().Base])
}

// BlockCities returns the distinct cities hosting interfaces of addr's
// /24 block, for the block co-locality analysis the paper defers to
// future work ("We do not investigate blocks co-locality in this work",
// §5.2.3).
func (w *World) BlockCities(a ipx.Addr) []gazetteer.City {
	counts := w.blockCities[a.Slash24().Base]
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]gazetteer.City, 0, len(keys))
	for _, k := range keys {
		cc, name, _ := strings.Cut(k, "/")
		if c, ok := w.Gaz.City(cc, name); ok {
			out = append(out, c)
		}
	}
	return out
}

// BlockMajorityCity returns the city hosting the most interfaces of addr's
// /24 block. Vendor measurement pipelines resolve a probed block to its
// dominant site, so this is what a good block-level correction learns.
// ok is false for blocks with no interfaces.
func (w *World) BlockMajorityCity(a ipx.Addr) (gazetteer.City, bool) {
	counts := w.blockCities[a.Slash24().Base]
	bestKey, bestN := "", 0
	for k, n := range counts {
		if n > bestN || (n == bestN && k < bestKey) {
			bestKey, bestN = k, n
		}
	}
	if bestKey == "" {
		return gazetteer.City{}, false
	}
	cc, name, _ := strings.Cut(bestKey, "/")
	return w.Gaz.City(cc, name)
}

// PeerIface returns the interface on the opposite end of i's link. Every
// interface in the world is link-attached, so this always resolves.
func (w *World) PeerIface(i IfaceID) IfaceID {
	l := w.Links[w.Interfaces[i].Link]
	if l.AIface == i {
		return l.BIface
	}
	return l.AIface
}

// NearestRouterFunc returns the router closest to p among those accepted
// by the predicate. ok is false when no router is accepted.
func (w *World) NearestRouterFunc(p geo.Coordinate, accept func(RouterID) bool) (RouterID, bool) {
	best, bestD := RouterID(-1), 0.0
	for i := range w.Routers {
		r := &w.Routers[i]
		if !accept(r.ID) {
			continue
		}
		d := r.Coord.DistanceKm(p)
		if best < 0 || d < bestD {
			best, bestD = r.ID, d
		}
	}
	return best, best >= 0
}

// NearestRouter returns the router closest to p, optionally restricted to
// a country (iso2 != ""). Used to attach measurement probes to the
// topology. Falls back to the global nearest if the country has no
// routers. ok is false only for an empty world.
func (w *World) NearestRouter(p geo.Coordinate, iso2 string) (RouterID, bool) {
	best, bestD := RouterID(-1), 0.0
	bestAny, bestAnyD := RouterID(-1), 0.0
	for i := range w.Routers {
		r := &w.Routers[i]
		d := r.Coord.DistanceKm(p)
		if bestAny < 0 || d < bestAnyD {
			bestAny, bestAnyD = r.ID, d
		}
		if iso2 != "" && w.ASes[r.AS].PoPs[r.PoP].City.Country != iso2 {
			continue
		}
		if best < 0 || d < bestD {
			best, bestD = r.ID, d
		}
	}
	if best >= 0 {
		return best, true
	}
	return bestAny, bestAny >= 0
}

// Validate performs internal consistency checks and returns the first
// violation found. The test suite runs it on every generated world.
func (w *World) Validate() error {
	for i := range w.Interfaces {
		ifc := &w.Interfaces[i]
		if ifc.ID != IfaceID(i) {
			return fmt.Errorf("interface %d has ID %d", i, ifc.ID)
		}
		if int(ifc.Router) >= len(w.Routers) {
			return fmt.Errorf("interface %d references router %d", i, ifc.Router)
		}
		if got, ok := w.ifaceByAddr[ifc.Addr]; !ok || got != ifc.ID {
			return fmt.Errorf("address index broken for %v", ifc.Addr)
		}
	}
	for i := range w.Links {
		l := &w.Links[i]
		if w.Interfaces[l.AIface].Router != l.A || w.Interfaces[l.BIface].Router != l.B {
			return fmt.Errorf("link %d interface/router mismatch", i)
		}
		if l.OneWayMs < 0 {
			return fmt.Errorf("link %d has negative delay", i)
		}
	}
	// The graph must be connected or traceroutes cannot reach all /24s.
	if n := len(w.Routers); n > 0 {
		seen := make([]bool, n)
		queue := []RouterID{0}
		seen[0] = true
		count := 1
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for _, h := range w.adj[r] {
				if !seen[h.Peer] {
					seen[h.Peer] = true
					count++
					queue = append(queue, h.Peer)
				}
			}
		}
		if count != n {
			return fmt.Errorf("graph disconnected: reached %d of %d routers", count, n)
		}
	}
	return nil
}
