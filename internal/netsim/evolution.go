package netsim

import (
	"math"
	"math/rand"
	"strings"

	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
	"routergeo/internal/ipx"
)

// EvolutionParams sets the per-month hazard rates of the churn processes
// the paper measures in §3.1: interface moves (address reassigned to a
// host elsewhere), hostname renames without a move, and rDNS record loss.
type EvolutionParams struct {
	MoveRatePerMonth   float64
	RenameRatePerMonth float64
	LossRatePerMonth   float64
	// UndecodableFrac of renames produce a hostname with no hint matching
	// any DRoP rule (the paper's 1.5% of changed names).
	UndecodableFrac float64
	// StaleHintFrac of moves keep the old hostname, leaving a misleading
	// location hint (§3.1 discusses these as a residual error source).
	StaleHintFrac float64
}

// DefaultEvolutionParams calibrates the hazards to the paper's 16-month
// observations (§3.1): 6.9% of addresses lost rDNS, 24% changed
// hostname, and 7.4% of all addresses changed location. The observed
// fractions decompose over two independent processes: Moved covers every
// location change (including stale-hint moves that keep the old name),
// while Renamed is the union of in-place renames and moves whose
// operator updated the hostname — so the in-place rename marginal is
// backed out of the observed 24% rather than hazarded directly:
//
//	P(renamed at 16) = 1 - (1 - pRename)·(1 - pMove·(1 - staleFrac))
func DefaultEvolutionParams() EvolutionParams {
	const (
		horizonMonths = 16.0
		movedFrac     = 0.074 // all location changes, stale-hint moves included
		renamedFrac   = 0.24  // all hostname changes, updated moves included
		lostFrac      = 0.069
		undecodable   = 0.02
		staleHint     = 0.06
	)
	hazard := func(p float64) float64 { return -math.Log(1-p) / horizonMonths }
	renameOnly := 1 - (1-renamedFrac)/(1-movedFrac*(1-staleHint))
	return EvolutionParams{
		MoveRatePerMonth:   hazard(movedFrac),
		RenameRatePerMonth: hazard(renameOnly),
		LossRatePerMonth:   hazard(lostFrac),
		UndecodableFrac:    undecodable,
		StaleHintFrac:      staleHint,
	}
}

// Evolution is a sampled churn timeline over a world's interfaces. Query
// it at any horizon (months) to get a consistent view: the paper needs the
// same world at +0 (Ark extraction), +10 months (the Giotsas 1ms-RTT
// dataset) and +16 months (the hostname-churn re-check).
type Evolution struct {
	w        *World
	moveAt   []float64
	renameAt []float64
	loseAt   []float64
	undec    []bool
	stale    []bool
	newCity  []gazetteer.City
	newCoord []geo.Coordinate

	// byBlock indexes interfaces by /24 base for the horizon-aware block
	// majority query, mirroring World.blockCities' per-interface counting.
	byBlock map[ipx.Addr][]IfaceID
}

// Evolve samples a churn timeline. Deterministic for a given rng state.
func (w *World) Evolve(rng *rand.Rand, p EvolutionParams) *Evolution {
	n := len(w.Interfaces)
	e := &Evolution{
		w:        w,
		moveAt:   make([]float64, n),
		renameAt: make([]float64, n),
		loseAt:   make([]float64, n),
		undec:    make([]bool, n),
		stale:    make([]bool, n),
		newCity:  make([]gazetteer.City, n),
		newCoord: make([]geo.Coordinate, n),
	}
	draw := func(rate float64) float64 {
		if rate <= 0 {
			return math.Inf(1)
		}
		return rng.ExpFloat64() / rate
	}
	for i := range w.Interfaces {
		e.moveAt[i] = draw(p.MoveRatePerMonth)
		e.renameAt[i] = draw(p.RenameRatePerMonth)
		e.loseAt[i] = draw(p.LossRatePerMonth)
		e.undec[i] = rng.Float64() < p.UndecodableFrac
		e.stale[i] = rng.Float64() < p.StaleHintFrac

		// Destination if this interface ever moves: another PoP of the same
		// AS when one exists (the paper's NTT example moved Dallas → Miami
		// within ntt.net), otherwise another city in the same country.
		as := w.ASOfIface(IfaceID(i))
		cur := w.CityOf(IfaceID(i))
		var candidates []gazetteer.City
		for _, p := range as.PoPs {
			if p.City.Country != cur.Country || p.City.Name != cur.Name {
				candidates = append(candidates, p.City)
			}
		}
		var dest gazetteer.City
		if len(candidates) > 0 {
			dest = candidates[rng.Intn(len(candidates))]
		} else {
			// Single-PoP operator: relocate within the country, or anywhere
			// if the country has only this one city embedded.
			for tries := 0; ; tries++ {
				cc := cur.Country
				if tries >= 8 {
					cc = ""
				}
				dest = w.Gaz.SampleCity(rng, cc)
				if dest.Country != cur.Country || dest.Name != cur.Name {
					break
				}
			}
		}
		e.newCity[i] = dest
		e.newCoord[i] = dest.Coord.Offset(rng.Float64()*w.Cfg.CityJitterKm, rng.Float64()*360)
	}
	// The block index consumes no rng draws, so adding it kept existing
	// seeds' timelines bit-identical.
	e.byBlock = make(map[ipx.Addr][]IfaceID, len(w.blockCities))
	for i := range w.Interfaces {
		base := w.Interfaces[i].Addr.Slash24().Base
		e.byBlock[base] = append(e.byBlock[base], IfaceID(i))
	}
	return e
}

// World returns the epoch-0 world the timeline evolves.
func (e *Evolution) World() *World { return e.w }

// BlockMajorityCityAt is World.BlockMajorityCity at a churn horizon: the
// city hosting the most interfaces of addr's /24 block once every move
// up to the horizon has been applied, with the same smallest-key tie
// break. At months == 0 it returns exactly what World.BlockMajorityCity
// returns, which is what keeps an evolved vendor build at horizon zero
// byte-identical to the un-evolved one.
func (e *Evolution) BlockMajorityCityAt(a ipx.Addr, months float64) (gazetteer.City, bool) {
	ids := e.byBlock[a.Slash24().Base]
	if len(ids) == 0 {
		return gazetteer.City{}, false
	}
	counts := make(map[string]int, 2)
	for _, id := range ids {
		c := e.CityAt(id, months)
		counts[c.Country+"/"+c.Name]++
	}
	bestKey, bestN := "", 0
	for k, n := range counts {
		if n > bestN || (n == bestN && k < bestKey) {
			bestKey, bestN = k, n
		}
	}
	cc, name, _ := strings.Cut(bestKey, "/")
	return e.w.Gaz.City(cc, name)
}

// Moved reports whether the interface's address was reassigned to a host
// at a different location by the given horizon.
func (e *Evolution) Moved(i IfaceID, months float64) bool {
	return e.moveAt[i] <= months
}

// CityAt returns the interface's true city at the horizon.
func (e *Evolution) CityAt(i IfaceID, months float64) gazetteer.City {
	if e.Moved(i, months) {
		return e.newCity[i]
	}
	return e.w.CityOf(i)
}

// CoordAt returns the interface's true coordinates at the horizon.
func (e *Evolution) CoordAt(i IfaceID, months float64) geo.Coordinate {
	if e.Moved(i, months) {
		return e.newCoord[i]
	}
	return e.w.CoordOf(i)
}

// RDNSLost reports whether the interface no longer has a PTR record at the
// horizon.
func (e *Evolution) RDNSLost(i IfaceID, months float64) bool {
	return e.loseAt[i] <= months
}

// Renamed reports whether the hostname at the horizon differs from the
// original: either an in-place rename fired, or the interface moved and
// its hostname was updated to the new site.
func (e *Evolution) Renamed(i IfaceID, months float64) bool {
	if e.renameAt[i] <= months {
		return true
	}
	return e.Moved(i, months) && !e.stale[i]
}

// HintUndecodable reports whether a renamed hostname carries no decodable
// location hint at the horizon.
func (e *Evolution) HintUndecodable(i IfaceID, months float64) bool {
	return e.Renamed(i, months) && e.undec[i]
}

// HintStale reports whether the interface moved but kept its old hostname,
// so any hint in it points at the previous location.
func (e *Evolution) HintStale(i IfaceID, months float64) bool {
	return e.Moved(i, months) && e.stale[i]
}
