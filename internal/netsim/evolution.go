package netsim

import (
	"math"
	"math/rand"

	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
)

// EvolutionParams sets the per-month hazard rates of the churn processes
// the paper measures in §3.1: interface moves (address reassigned to a
// host elsewhere), hostname renames without a move, and rDNS record loss.
type EvolutionParams struct {
	MoveRatePerMonth   float64
	RenameRatePerMonth float64
	LossRatePerMonth   float64
	// UndecodableFrac of renames produce a hostname with no hint matching
	// any DRoP rule (the paper's 1.5% of changed names).
	UndecodableFrac float64
	// StaleHintFrac of moves keep the old hostname, leaving a misleading
	// location hint (§3.1 discusses these as a residual error source).
	StaleHintFrac float64
}

// DefaultEvolutionParams calibrates the hazards to the paper's 16-month
// observations: 6.9% of addresses lost rDNS, 24% changed hostname, and
// 7.4% of all addresses changed location.
func DefaultEvolutionParams() EvolutionParams {
	hazard := func(p16 float64) float64 { return -math.Log(1-p16) / 16 }
	return EvolutionParams{
		MoveRatePerMonth:   hazard(0.079), // moves incl. stale-hint ones
		RenameRatePerMonth: hazard(0.166), // renames that are not moves
		LossRatePerMonth:   hazard(0.069),
		UndecodableFrac:    0.02,
		StaleHintFrac:      0.06,
	}
}

// Evolution is a sampled churn timeline over a world's interfaces. Query
// it at any horizon (months) to get a consistent view: the paper needs the
// same world at +0 (Ark extraction), +10 months (the Giotsas 1ms-RTT
// dataset) and +16 months (the hostname-churn re-check).
type Evolution struct {
	w        *World
	moveAt   []float64
	renameAt []float64
	loseAt   []float64
	undec    []bool
	stale    []bool
	newCity  []gazetteer.City
	newCoord []geo.Coordinate
}

// Evolve samples a churn timeline. Deterministic for a given rng state.
func (w *World) Evolve(rng *rand.Rand, p EvolutionParams) *Evolution {
	n := len(w.Interfaces)
	e := &Evolution{
		w:        w,
		moveAt:   make([]float64, n),
		renameAt: make([]float64, n),
		loseAt:   make([]float64, n),
		undec:    make([]bool, n),
		stale:    make([]bool, n),
		newCity:  make([]gazetteer.City, n),
		newCoord: make([]geo.Coordinate, n),
	}
	draw := func(rate float64) float64 {
		if rate <= 0 {
			return math.Inf(1)
		}
		return rng.ExpFloat64() / rate
	}
	for i := range w.Interfaces {
		e.moveAt[i] = draw(p.MoveRatePerMonth)
		e.renameAt[i] = draw(p.RenameRatePerMonth)
		e.loseAt[i] = draw(p.LossRatePerMonth)
		e.undec[i] = rng.Float64() < p.UndecodableFrac
		e.stale[i] = rng.Float64() < p.StaleHintFrac

		// Destination if this interface ever moves: another PoP of the same
		// AS when one exists (the paper's NTT example moved Dallas → Miami
		// within ntt.net), otherwise another city in the same country.
		as := w.ASOfIface(IfaceID(i))
		cur := w.CityOf(IfaceID(i))
		var candidates []gazetteer.City
		for _, p := range as.PoPs {
			if p.City.Country != cur.Country || p.City.Name != cur.Name {
				candidates = append(candidates, p.City)
			}
		}
		var dest gazetteer.City
		if len(candidates) > 0 {
			dest = candidates[rng.Intn(len(candidates))]
		} else {
			// Single-PoP operator: relocate within the country, or anywhere
			// if the country has only this one city embedded.
			for tries := 0; ; tries++ {
				cc := cur.Country
				if tries >= 8 {
					cc = ""
				}
				dest = w.Gaz.SampleCity(rng, cc)
				if dest.Country != cur.Country || dest.Name != cur.Name {
					break
				}
			}
		}
		e.newCity[i] = dest
		e.newCoord[i] = dest.Coord.Offset(rng.Float64()*w.Cfg.CityJitterKm, rng.Float64()*360)
	}
	return e
}

// Moved reports whether the interface's address was reassigned to a host
// at a different location by the given horizon.
func (e *Evolution) Moved(i IfaceID, months float64) bool {
	return e.moveAt[i] <= months
}

// CityAt returns the interface's true city at the horizon.
func (e *Evolution) CityAt(i IfaceID, months float64) gazetteer.City {
	if e.Moved(i, months) {
		return e.newCity[i]
	}
	return e.w.CityOf(i)
}

// CoordAt returns the interface's true coordinates at the horizon.
func (e *Evolution) CoordAt(i IfaceID, months float64) geo.Coordinate {
	if e.Moved(i, months) {
		return e.newCoord[i]
	}
	return e.w.CoordOf(i)
}

// RDNSLost reports whether the interface no longer has a PTR record at the
// horizon.
func (e *Evolution) RDNSLost(i IfaceID, months float64) bool {
	return e.loseAt[i] <= months
}

// Renamed reports whether the hostname at the horizon differs from the
// original: either an in-place rename fired, or the interface moved and
// its hostname was updated to the new site.
func (e *Evolution) Renamed(i IfaceID, months float64) bool {
	if e.renameAt[i] <= months {
		return true
	}
	return e.Moved(i, months) && !e.stale[i]
}

// HintUndecodable reports whether a renamed hostname carries no decodable
// location hint at the horizon.
func (e *Evolution) HintUndecodable(i IfaceID, months float64) bool {
	return e.Renamed(i, months) && e.undec[i]
}

// HintStale reports whether the interface moved but kept its old hostname,
// so any hint in it points at the previous location.
func (e *Evolution) HintStale(i IfaceID, months float64) bool {
	return e.Moved(i, months) && e.stale[i]
}
