// ASFootprint: another workload from the paper's introduction —
// estimating the geographic presence of an autonomous system from the
// locations of its router addresses. We take the seeded multinational
// operators (the seven ground-truth domains), compute their per-country
// interface counts from exact truth, and compare with what each database
// would report. Registry-fed databases collapse a multinational's
// footprint onto its headquarters country, which is precisely the bias
// behind the paper's §5.2.3 case study.
package main

import (
	"fmt"
	"log"
	"sort"

	"routergeo"
)

func main() {
	study, err := routergeo.New(routergeo.Quick(), routergeo.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	for _, domain := range []string{"cogentco.com", "seabone.net"} {
		op, ok := findOperator(study, domain)
		if !ok {
			log.Fatalf("operator %s missing from the world", domain)
		}
		fmt.Printf("=== AS%d %s (%s), %d interfaces ===\n",
			op.ASN, op.Name, op.Domain, len(op.Interfaces))

		truth := map[string]int{}
		perDB := map[string]map[string]int{}
		for _, db := range study.Databases() {
			perDB[db] = map[string]int{}
		}
		for _, ip := range op.Interfaces {
			if loc, ok := study.TrueLocation(ip); ok {
				truth[loc.Country]++
			}
			for _, db := range study.Databases() {
				if loc, ok := study.Lookup(db, ip); ok && loc.Country != "" {
					perDB[db][loc.Country]++
				}
			}
		}

		fmt.Printf("  true footprint: %d countries; databases report:\n", len(truth))
		for _, db := range study.Databases() {
			fmt.Printf("    %-18s %d countries (home-country share %5.1f%% vs true %5.1f%%)\n",
				db, len(perDB[db]),
				100*share(perDB[db], op.HomeCountry), 100*share(truth, op.HomeCountry))
		}
		fmt.Printf("  top true countries: %s\n", top(truth, 5))
		fmt.Printf("  top per IP2Location: %s\n\n", top(perDB["IP2Location-Lite"], 5))
	}

	fmt.Println("A registry-fed database inflates the home-country share and shrinks the")
	fmt.Println("visible footprint; an AS-presence study built on it undercounts foreign PoPs.")
}

func findOperator(study *routergeo.Study, domain string) (routergeo.ASInfo, bool) {
	for _, op := range study.Operators(true) {
		if op.Domain == domain {
			return op, true
		}
	}
	return routergeo.ASInfo{}, false
}

func share(counts map[string]int, cc string) float64 {
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(counts[cc]) / float64(total)
}

func top(counts map[string]int, n int) string {
	type kv struct {
		cc string
		n  int
	}
	var all []kv
	for cc, c := range counts {
		all = append(all, kv{cc, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].cc < all[j].cc
	})
	if len(all) > n {
		all = all[:n]
	}
	s := ""
	for i, kv := range all {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s:%d", kv.cc, kv.n)
	}
	return s
}
