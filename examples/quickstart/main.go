// Quickstart: build a study, look a few router addresses up in all four
// simulated databases, compare against exact truth, and print each
// database's headline accuracy — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"routergeo"
)

func main() {
	// Quick() builds a smaller world in well under a second. Drop it for
	// the full experiment scale.
	study, err := routergeo.New(routergeo.Quick(), routergeo.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	stats := study.WorldStats()
	fmt.Printf("world: %d ASes, %d routers, %d interfaces; ground truth: %d addresses\n\n",
		stats.ASes, stats.Routers, stats.Interfaces, stats.GroundTruth)

	// Look up the first few ground-truth addresses everywhere.
	gt := study.GroundTruth()
	for _, entry := range gt[:3] {
		truth, _ := study.TrueLocation(entry.IP)
		fmt.Printf("%s (truth: %s/%s, via %s)\n", entry.IP, truth.Country, truth.City, entry.Method)
		for _, db := range study.Databases() {
			loc, ok := study.Lookup(db, entry.IP)
			switch {
			case !ok:
				fmt.Printf("  %-18s no record\n", db)
			case loc.City != "":
				fmt.Printf("  %-18s %s/%s\n", db, loc.Country, loc.City)
			default:
				fmt.Printf("  %-18s %s (country only)\n", db, loc.Country)
			}
		}
		fmt.Println()
	}

	// The paper's headline comparison.
	fmt.Println("accuracy over ground truth (city answers within 40 km):")
	for _, db := range study.Databases() {
		a := study.Accuracy(db)
		fmt.Printf("  %-18s country %5.1f%%  city %5.1f%% (city coverage %5.1f%%)\n",
			db, 100*a.CountryAccuracy, 100*a.CityAccuracy, 100*a.CityCoverage)
	}

	fmt.Println("\nrecommendations:")
	for i, r := range study.Recommendations() {
		fmt.Printf("  %d. %s\n", i+1, r)
	}
}
