// Detour: the paper's introduction motivates router geolocation with
// studies that detect international routing detours — paths that start
// and end in one country but visit another in between (Shah et al.,
// AINTEC 2016). Such studies stand or fall with router geolocation: a
// database that mislocates one backbone hop invents a detour that never
// happened, or hides a real one.
//
// This example runs simulated traceroutes, classifies each path as
// detouring or not according to (a) exact truth and (b) each database,
// and reports the confusion: false detours per database. It is a direct
// demonstration of the paper's warning that research conclusions inherit
// database error.
package main

import (
	"fmt"
	"log"
	"strings"

	"routergeo"
)

func main() {
	study, err := routergeo.New(routergeo.Quick(), routergeo.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	paths := study.SamplePaths(400, 42)

	type tally struct{ truthDetour, dbDetour, falsePos, falseNeg, agree int }
	tallies := map[string]*tally{}
	for _, db := range study.Databases() {
		tallies[db] = &tally{}
	}

	domestic := 0
	for _, p := range paths {
		// Only domestic paths can detour: source and destination country
		// must match (we read them off the path's endpoints descriptions).
		srcCC := countryOf(p.From)
		dstCC := countryOf(p.To)
		if srcCC == "" || srcCC != dstCC || len(p.Hops) == 0 {
			continue
		}
		domestic++

		truth := detourByTruth(study, p, srcCC)
		for _, db := range study.Databases() {
			got, known := detourByDB(study, db, p, srcCC)
			if !known {
				continue
			}
			t := tallies[db]
			if truth {
				t.truthDetour++
			}
			if got {
				t.dbDetour++
			}
			switch {
			case got == truth:
				t.agree++
			case got && !truth:
				t.falsePos++
			default:
				t.falseNeg++
			}
		}
	}

	fmt.Printf("domestic paths analysed: %d\n\n", domestic)
	fmt.Printf("%-18s %12s %10s %12s %12s\n", "database", "db detours", "agree", "false pos", "false neg")
	for _, db := range study.Databases() {
		t := tallies[db]
		fmt.Printf("%-18s %12d %10d %12d %12d\n", db, t.dbDetour, t.agree, t.falsePos, t.falseNeg)
	}
	fmt.Println("\nfalse positives are domestic paths a database 'sees' leaving the country")
	fmt.Println("because it mislocates a backbone hop — the paper's core caution in action.")
}

// countryOf extracts the ISO2 code from a path endpoint description of
// the form "AS174 US/Washington".
func countryOf(desc string) string {
	i := strings.LastIndexByte(desc, ' ')
	if i < 0 {
		return ""
	}
	cc, _, ok := strings.Cut(desc[i+1:], "/")
	if !ok {
		return ""
	}
	return cc
}

// detourByTruth reports whether any hop genuinely sits outside cc.
func detourByTruth(study *routergeo.Study, p routergeo.Path, cc string) bool {
	for _, hop := range p.Hops {
		if loc, ok := study.TrueLocation(hop); ok && loc.Country != cc {
			return true
		}
	}
	return false
}

// detourByDB reports whether the database places any hop outside cc.
// known is false when the database answers for no hop at all.
func detourByDB(study *routergeo.Study, db string, p routergeo.Path, cc string) (detour, known bool) {
	for _, hop := range p.Hops {
		loc, ok := study.Lookup(db, hop)
		if !ok || loc.Country == "" {
			continue
		}
		known = true
		if loc.Country != cc {
			return true, true
		}
	}
	return false, known
}
