// RemoteEval: the commercial databases the paper studies are usually
// consumed as hosted lookup APIs, not local files. This example serves a
// study's four databases over HTTP (the same handler cmd/geoserve runs),
// points the batch-first API client at them, and re-runs the paper's
// accuracy evaluation across the wire — demonstrating that the
// methodology in internal/core is transport-agnostic: a Provider is a
// Provider.
//
// Two remote paths are compared. The plain Client pays one round trip
// per address; the RemoteProvider prefetches the whole target list
// through POST /v2/lookup with a bounded worker pool, which is how the
// paper's 1.64M-address Ark sweep stays tractable over a network.
//
// A third leg repeats the batched evaluation against a server wrapped
// in the "mixed" chaos policy (internal/faults), with the local
// database armed as the degradation fallback — the same configuration
// `geoserve -chaos mixed` serves. Retries, the circuit breaker and
// fallback degradation absorb every injected fault; the numbers still
// match bit-for-bit, and the degraded/transport tallies show what it
// cost.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"routergeo"
	"routergeo/internal/core"
	"routergeo/internal/experiments"
	"routergeo/internal/faults"
	"routergeo/internal/geodb/httpapi"
)

func main() {
	// Build the environment directly so we can reach the databases and
	// targets; the public facade wraps this same machinery.
	cfg := experiments.DefaultConfig()
	cfg.World.ASes = 250
	cfg.Atlas.Probes = 600
	cfg.OneMsProbes = 900
	ctx := context.Background()
	env, err := experiments.NewEnv(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the four databases exactly as cmd/geoserve would.
	srv := httptest.NewServer(httpapi.NewHandler(env.DBs))
	defer srv.Close()
	fmt.Printf("serving %d databases at %s\n\n", len(env.DBs), srv.URL)

	// A second server under the "mixed" chaos policy — latency spikes,
	// 503 bursts, throttles, resets, truncated and dripped bodies — as
	// `geoserve -chaos mixed` would serve it.
	policy, err := faults.Parse("mixed:delay=2ms")
	if err != nil {
		log.Fatal(err)
	}
	injector := faults.New(policy, faults.WithExemptPaths("/healthz", "/v2/stats"))
	chaotic := httptest.NewServer(injector.Middleware(httpapi.NewHandler(env.DBs)))
	defer chaotic.Close()

	fmt.Printf("%-18s %13s %13s %15s %12s\n",
		"database", "country acc", "city acc", "transport", "eval time")
	for _, db := range env.DBs {
		local := core.MeasureAccuracy(ctx, db, env.Targets)
		fmt.Printf("%-18s %12.1f%% %12.1f%% %15s %12s\n",
			db.Name(), 100*local.CountryAccuracy(), 100*local.CityAccuracy(), "local", "-")

		// Path 1: single-lookup client — one GET /v1/lookup per address.
		single := httpapi.NewClient(srv.URL, httpapi.WithDatabase(db.Name()))
		start := time.Now()
		remoteSingle := core.MeasureAccuracy(ctx, single, env.Targets)
		singleTime := time.Since(start)
		fmt.Printf("%-18s %12.1f%% %12.1f%% %15s %12s\n",
			"", 100*remoteSingle.CountryAccuracy(), 100*remoteSingle.CityAccuracy(),
			"HTTP /v1 x1", singleTime.Round(time.Millisecond))

		// Path 2: RemoteProvider — core's Prefetcher hook batches every
		// target through POST /v2/lookup with eight workers.
		batched, err := httpapi.NewRemoteProvider(httpapi.NewClient(srv.URL,
			httpapi.WithDatabase(db.Name()),
			httpapi.WithConcurrency(8),
			httpapi.WithClientMaxBatch(2000)))
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		remoteBatch := core.MeasureAccuracy(ctx, batched, env.Targets)
		batchTime := time.Since(start)
		fmt.Printf("%-18s %12.1f%% %12.1f%% %15s %12s\n",
			"", 100*remoteBatch.CountryAccuracy(), 100*remoteBatch.CityAccuracy(),
			"HTTP /v2 batch", batchTime.Round(time.Millisecond))

		// Path 3: the same batched evaluation through the chaotic server,
		// resilience armed: short capped backoff, a per-host breaker, and
		// the local database as degradation fallback.
		hardened, err := httpapi.NewRemoteProvider(httpapi.NewClient(chaotic.URL,
			httpapi.WithDatabase(db.Name()),
			httpapi.WithConcurrency(8),
			httpapi.WithClientMaxBatch(2000),
			httpapi.WithRetries(4),
			httpapi.WithBackoff(2*time.Millisecond),
			httpapi.WithMaxBackoff(20*time.Millisecond),
			httpapi.WithBreaker(5, 50*time.Millisecond)),
			httpapi.WithFallback(db))
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		remoteChaos := core.MeasureAccuracy(ctx, hardened, env.Targets)
		chaosTime := time.Since(start)
		fmt.Printf("%-18s %12.1f%% %12.1f%% %15s %12s  (degraded %d, transport errors %d)\n",
			"", 100*remoteChaos.CountryAccuracy(), 100*remoteChaos.CityAccuracy(),
			"HTTP + chaos", chaosTime.Round(time.Millisecond),
			hardened.Degraded(), hardened.TransportErrors())

		for _, remote := range []core.Accuracy{remoteSingle, remoteBatch, remoteChaos} {
			if local.CountryCorrect != remote.CountryCorrect || local.Within40Km != remote.Within40Km {
				log.Fatalf("%s: remote evaluation diverged from local", db.Name())
			}
		}
		if err := single.Err(); err != nil {
			log.Fatalf("%s: single-lookup run hit transport errors: %v", db.Name(), err)
		}
		if err := batched.Err(); err != nil {
			log.Fatalf("%s: batched run hit transport errors: %v", db.Name(), err)
		}
	}
	fmt.Println("\nlocal, per-address HTTP, batched HTTP and chaos-degraded evaluations all")
	fmt.Println("agree bit-for-bit; the core methodology only sees the geodb.Provider")
	fmt.Println("interface, so hosted databases score identically — the batch path just")
	fmt.Println("gets there much faster, and the resilience layer keeps the numbers")
	fmt.Println("honest when the transport misbehaves.")
	_ = routergeo.ExperimentIDs // the facade exposes the same machinery
}
