// RemoteEval: the commercial databases the paper studies are usually
// consumed as hosted lookup APIs, not local files. This example serves a
// study's four databases over HTTP (the same handler cmd/geoserve runs),
// points the API *client* at them, and re-runs the paper's accuracy
// evaluation across the wire — demonstrating that the methodology in
// internal/core is transport-agnostic: a Provider is a Provider.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"routergeo"
	"routergeo/internal/core"
	"routergeo/internal/experiments"
	"routergeo/internal/geodb/httpapi"
)

func main() {
	// Build the environment directly so we can reach the databases and
	// targets; the public facade wraps this same machinery.
	cfg := experiments.DefaultConfig()
	cfg.World.ASes = 250
	cfg.Atlas.Probes = 600
	cfg.OneMsProbes = 900
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the four databases exactly as cmd/geoserve would.
	srv := httptest.NewServer(httpapi.NewHandler(env.DBs))
	defer srv.Close()
	fmt.Printf("serving %d databases at %s\n\n", len(env.DBs), srv.URL)

	fmt.Printf("%-18s %16s %16s %13s\n", "database", "country acc", "city acc", "transport")
	for _, db := range env.DBs {
		local := core.MeasureAccuracy(db, env.Targets)
		remote := core.MeasureAccuracy(
			&httpapi.Client{BaseURL: srv.URL, DB: db.Name()}, env.Targets)

		fmt.Printf("%-18s %15.1f%% %15.1f%% %13s\n",
			db.Name(), 100*local.CountryAccuracy(), 100*local.CityAccuracy(), "local")
		fmt.Printf("%-18s %15.1f%% %15.1f%% %13s\n",
			"", 100*remote.CountryAccuracy(), 100*remote.CityAccuracy(), "HTTP")
		if local.CountryCorrect != remote.CountryCorrect || local.Within40Km != remote.Within40Km {
			log.Fatalf("%s: remote evaluation diverged from local", db.Name())
		}
	}
	fmt.Println("\nlocal and HTTP evaluations agree bit-for-bit; the core methodology only")
	fmt.Println("sees the geodb.Provider interface, so hosted databases score identically.")
	_ = routergeo.ExperimentIDs // the facade exposes the same machinery
}
