// DBCompare: the paper's §5.1 consistency analysis as a standalone
// workflow — export the four databases to the binary .rgdb format, load
// them back the way an external consumer would, and compute pairwise
// agreement over the Ark-observed router addresses. Demonstrates the
// file format round trip plus the consistency methodology.
package main

import (
	"fmt"
	"log"
	"os"

	"routergeo"
	"routergeo/internal/geodb/dbfile"
	"routergeo/internal/ipx"
)

func main() {
	study, err := routergeo.New(routergeo.Quick(), routergeo.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "dbcompare")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	paths, err := study.ExportDatabases(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d databases to %s\n\n", len(paths), dir)

	// Load them back through the file format, as an external tool would.
	type db struct {
		name   string
		lookup func(ipx.Addr) (country string, ok bool)
	}
	var dbs []db
	for _, p := range paths {
		loaded, err := dbfile.ReadFile(p)
		if err != nil {
			log.Fatal(err)
		}
		d := loaded
		dbs = append(dbs, db{
			name: d.Name(),
			lookup: func(a ipx.Addr) (string, bool) {
				rec, ok := d.Lookup(a)
				if !ok || !rec.HasCountry() {
					return "", false
				}
				return rec.Country, true
			},
		})
	}

	var addrs []ipx.Addr
	for _, s := range study.ArkAddresses() {
		a, err := ipx.ParseAddr(s)
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	fmt.Printf("comparing over %d router addresses\n\n", len(addrs))

	fmt.Printf("%-18s", "")
	for _, d := range dbs {
		fmt.Printf(" %18s", d.name)
	}
	fmt.Println()
	for i, a := range dbs {
		fmt.Printf("%-18s", a.name)
		for j, b := range dbs {
			if j <= i {
				fmt.Printf(" %18s", "")
				continue
			}
			agree, both := 0, 0
			for _, addr := range addrs {
				ca, okA := a.lookup(addr)
				cb, okB := b.lookup(addr)
				if !okA || !okB {
					continue
				}
				both++
				if ca == cb {
					agree++
				}
			}
			fmt.Printf(" %17.1f%%", 100*float64(agree)/float64(both))
		}
		fmt.Println()
	}
	fmt.Println("\n(country-level agreement; the paper's Ark-scale numbers are 97.0-99.6%,")
	fmt.Println("and §5.1 warns that agreement does not imply correctness)")
}
