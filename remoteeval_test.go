package routergeo

// End-to-end acceptance tests for the batch-first /v2 API: the remote
// evaluation path must reproduce local evaluation bit-for-bit, and the
// batch endpoint must swallow a 10k-address request in one round trip.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"routergeo/internal/core"
	"routergeo/internal/geodb/httpapi"
)

// countingHandler wraps the API handler and tallies /v2/lookup hits.
type countingHandler struct {
	h       http.Handler
	lookups atomic.Int64
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v2/lookup" {
		c.lookups.Add(1)
	}
	c.h.ServeHTTP(w, r)
}

func TestV2Batch10kAddressesOneRequest(t *testing.T) {
	s := testStudy(t)
	ch := &countingHandler{h: httpapi.NewHandler(s.env.DBs)}
	srv := httptest.NewServer(ch)
	defer srv.Close()

	ark := s.ArkAddresses()
	ips := make([]string, 0, 10_000)
	for len(ips) < cap(ips) {
		ips = append(ips, ark[len(ips)%len(ark)])
	}
	body, err := json.Marshal(httpapi.BatchRequest{IPs: ips})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v2/lookup", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out httpapi.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != len(ips) {
		t.Fatalf("entries = %d, want %d", len(out.Entries), len(ips))
	}
	if got := ch.lookups.Load(); got != 1 {
		t.Fatalf("batch took %d requests, want 1", got)
	}
	for i, e := range out.Entries {
		if e.Error != "" {
			t.Fatalf("entry %d (%s): %s", i, e.IP, e.Error)
		}
	}
}

func TestRemoteProviderMatchesLocalEvaluation(t *testing.T) {
	// The issue's acceptance bar: RemoteProvider with WithConcurrency(8)
	// evaluates the full Quick-study ground truth against a local
	// httptest server with results identical to local geodb.DB lookups.
	s := testStudy(t)
	srv := httptest.NewServer(httpapi.NewHandler(s.env.DBs))
	defer srv.Close()

	for _, db := range s.env.DBs {
		remote, err := httpapi.NewRemoteProvider(httpapi.NewClient(srv.URL,
			httpapi.WithDatabase(db.Name()),
			httpapi.WithConcurrency(8),
			httpapi.WithClientMaxBatch(500)))
		if err != nil {
			t.Fatal(err)
		}
		local := core.MeasureAccuracy(context.Background(), db, s.env.Targets)
		got := core.MeasureAccuracy(context.Background(), remote, s.env.Targets)
		if local.Total != got.Total ||
			local.CountryAnswered != got.CountryAnswered ||
			local.CountryCorrect != got.CountryCorrect ||
			local.CityAnswered != got.CityAnswered ||
			local.Within40Km != got.Within40Km {
			t.Errorf("%s: remote accuracy %+v != local %+v", db.Name(), got, local)
		}
		if remote.Cached() == 0 {
			t.Errorf("%s: prefetch hook never fired; evaluation fell back to per-address lookups", db.Name())
		}
		if err := remote.Err(); err != nil {
			t.Errorf("%s: transport errors during evaluation: %v", db.Name(), err)
		}
	}
}

func TestStudyLookupBatch(t *testing.T) {
	s := testStudy(t)
	db := s.Databases()[0]
	ark := s.ArkAddresses()
	ips := append([]string{}, ark[:5]...)
	ips = append(ips, "not-an-ip", "203.0.113.9")

	got := s.LookupBatch(db, ips)
	if len(got) != len(ips) {
		t.Fatalf("results = %d, want %d", len(got), len(ips))
	}
	for i, r := range got[:5] {
		if r.Err != "" {
			t.Fatalf("entry %d: unexpected error %q", i, r.Err)
		}
		loc, ok := s.Lookup(db, ips[i])
		if ok != r.Found || loc != r.Location {
			t.Errorf("entry %d: batch (%+v,%v) != single (%+v,%v)", i, r.Location, r.Found, loc, ok)
		}
	}
	if got[5].Err == "" {
		t.Error("malformed address must carry a per-entry error")
	}
	if got[6].Err != "" {
		t.Errorf("well-formed address carries error %q", got[6].Err)
	}
}
