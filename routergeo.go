// Package routergeo is the public face of a full reproduction of
// "A Look at Router Geolocation in Public and Commercial Databases"
// (Gharaibeh et al., IMC 2017).
//
// A Study bundles everything the paper's evaluation needs: a synthetic
// Internet with exact location truth, an Ark-style topology sweep, a RIPE
// Atlas-style probe fleet, the DNS-based and RTT-proximity ground-truth
// datasets, and four simulated geolocation databases whose error models
// mirror the commercial products the paper measured. On top of it the
// package exposes the paper's methodology: coverage, consistency,
// accuracy against ground truth, regional breakdowns and the
// recommendation synthesis.
//
//	study, err := routergeo.New(routergeo.Quick())
//	loc, ok := study.Lookup("NetAcuity", "63.4.12.9")
//	acc := study.Accuracy("NetAcuity")
//
// The heavyweight pieces (world construction, measurement simulation,
// database building) run once inside New; everything else is cheap.
package routergeo

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"routergeo/internal/core"
	"routergeo/internal/experiments"
	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbfile"
	"routergeo/internal/groundtruth"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/traceroute"
)

// Option configures New.
type Option func(*experiments.Config)

// WithSeed reseeds the entire pipeline; every random draw downstream
// changes with it.
func WithSeed(seed int64) Option {
	return func(c *experiments.Config) { c.World.Seed = seed }
}

// WithScale sets the number of autonomous systems in the world.
func WithScale(ases int) Option {
	return func(c *experiments.Config) { c.World.ASes = ases }
}

// Quick shrinks the world and fleets so a Study builds in well under a
// second — the right choice for examples and tests.
func Quick() Option {
	return func(c *experiments.Config) {
		c.World.ASes = 250
		c.Atlas.Probes = 600
		c.OneMsProbes = 900
	}
}

// Study is a fully built experimental environment.
type Study struct {
	env *experiments.Env
}

// New builds a Study. With default options this takes a few seconds on one
// core; use Quick for interactive work.
func New(opts ...Option) (*Study, error) {
	cfg := experiments.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	env, err := experiments.NewEnv(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return &Study{env: env}, nil
}

// Location is one geolocation answer (or a truth record).
type Location struct {
	Country    string  // ISO2
	City       string  // "" below city resolution
	Lat, Lon   float64 // 0,0 when no coordinates
	Resolution string  // "country" or "city"
	BlockBits  uint8   // granularity of the record that answered
}

func locationFromRecord(r geodb.Record) Location {
	return Location{
		Country:    r.Country,
		City:       r.City,
		Lat:        r.Coord.Lat,
		Lon:        r.Coord.Lon,
		Resolution: r.Resolution.String(),
		BlockBits:  r.BlockBits,
	}
}

// Databases lists the four simulated products in the paper's order.
func (s *Study) Databases() []string {
	out := make([]string, len(s.env.DBs))
	for i, db := range s.env.DBs {
		out[i] = db.Name()
	}
	return out
}

// Lookup queries one database for a dotted-quad address.
func (s *Study) Lookup(db, ip string) (Location, bool) {
	addr, err := ipx.ParseAddr(ip)
	if err != nil {
		return Location{}, false
	}
	rec, ok := s.env.DB(db).Lookup(addr)
	if !ok {
		return Location{}, false
	}
	return locationFromRecord(rec), true
}

// BatchResult is one address's answer from LookupBatch, mirroring the
// per-entry semantics of the HTTP API's POST /v2/lookup: a malformed
// address carries its error without failing the rest of the batch.
type BatchResult struct {
	IP       string
	Location Location
	Found    bool
	Err      string // parse error for this entry, "" when well-formed
}

// LookupBatch queries one database for many addresses at once — the
// facade twin of the batch /v2/lookup endpoint, sized for sweeps like
// the paper's 1.64M-address Ark set. Results preserve input order.
func (s *Study) LookupBatch(db string, ips []string) []BatchResult {
	provider := s.env.DB(db)
	out := make([]BatchResult, len(ips))
	for i, ip := range ips {
		addr, err := ipx.ParseAddr(ip)
		if err != nil {
			out[i] = BatchResult{IP: ip, Err: err.Error()}
			continue
		}
		out[i] = BatchResult{IP: addr.String()}
		if rec, ok := provider.Lookup(addr); ok {
			out[i].Location, out[i].Found = locationFromRecord(rec), true
		}
	}
	return out
}

// TrueLocation returns the simulator's exact truth for a router interface
// address; ok is false for addresses with no interface.
func (s *Study) TrueLocation(ip string) (Location, bool) {
	addr, err := ipx.ParseAddr(ip)
	if err != nil {
		return Location{}, false
	}
	id, ok := s.env.W.IfaceByAddr(addr)
	if !ok {
		return Location{}, false
	}
	city := s.env.W.CityOf(id)
	coord := s.env.W.CoordOf(id)
	return Location{
		Country: city.Country, City: city.Name,
		Lat: coord.Lat, Lon: coord.Lon, Resolution: "city", BlockBits: 32,
	}, true
}

// TruthEntry is one ground-truth address with its claimed location.
type TruthEntry struct {
	IP       string
	Country  string
	Lat, Lon float64
	Method   string // "DNS-based" or "RTT-proximity"
	RIR      string
}

// GroundTruth returns the merged ground-truth dataset (DNS wins on
// overlap), ordered by address.
func (s *Study) GroundTruth() []TruthEntry {
	out := make([]TruthEntry, 0, s.env.GT.Len())
	for _, e := range s.env.GT.Entries {
		out = append(out, TruthEntry{
			IP:      e.Addr.String(),
			Country: e.Country,
			Lat:     e.Coord.Lat,
			Lon:     e.Coord.Lon,
			Method:  e.Method.String(),
			RIR:     s.env.W.Reg.RIROf(e.Addr).String(),
		})
	}
	return out
}

// ArkAddresses returns the Ark-topo-router address set as dotted quads.
func (s *Study) ArkAddresses() []string {
	out := make([]string, len(s.env.ArkAddrs))
	for i, a := range s.env.ArkAddrs {
		out[i] = a.String()
	}
	return out
}

// AccuracySummary is the paper's headline accuracy metrics for one
// database over the ground truth.
type AccuracySummary struct {
	Targets         int
	CountryCoverage float64
	CountryAccuracy float64
	CityCoverage    float64
	CityAccuracy    float64 // within the 40 km city range
	MedianErrorKm   float64 // over city-level answers
}

// Accuracy evaluates one database against the ground truth.
func (s *Study) Accuracy(db string) AccuracySummary {
	a := core.MeasureAccuracy(context.Background(), s.env.DB(db), s.env.Targets)
	out := AccuracySummary{
		Targets:         a.Total,
		CountryCoverage: a.CountryCoverage(),
		CountryAccuracy: a.CountryAccuracy(),
		CityCoverage:    a.CityCoverage(),
		CityAccuracy:    a.CityAccuracy(),
	}
	if a.ErrorCDF.N() > 0 {
		out.MedianErrorKm = a.ErrorCDF.Median()
	}
	return out
}

// AccuracyByRegion evaluates one database per RIR region.
func (s *Study) AccuracyByRegion(db string) map[string]AccuracySummary {
	out := map[string]AccuracySummary{}
	for rir, a := range core.AccuracyByRIR(context.Background(), s.env.DB(db), s.env.Targets) {
		sum := AccuracySummary{
			Targets:         a.Total,
			CountryCoverage: a.CountryCoverage(),
			CountryAccuracy: a.CountryAccuracy(),
			CityCoverage:    a.CityCoverage(),
			CityAccuracy:    a.CityAccuracy(),
		}
		if a.ErrorCDF.N() > 0 {
			sum.MedianErrorKm = a.ErrorCDF.Median()
		}
		out[rir.String()] = sum
	}
	return out
}

// Disagreement compares two databases' city answers over the Ark set: the
// fraction of commonly answered addresses placed more than 40 km apart
// (Figure 1's headline number).
func (s *Study) Disagreement(dbA, dbB string) (over40Frac float64, compared int) {
	p := core.MeasurePairwiseCity(context.Background(), s.env.DB(dbA), s.env.DB(dbB), s.env.ArkAddrs)
	return p.DisagreeOver40Pct(), p.Both
}

// Recommendations returns the §6-style guidance derived from this study's
// measurements.
func (s *Study) Recommendations() []string {
	results := map[string]core.Accuracy{}
	perRIR := map[string]map[geo.RIR]core.Accuracy{}
	for _, db := range s.env.DBs {
		results[db.Name()] = core.MeasureAccuracy(context.Background(), db, s.env.Targets)
		perRIR[db.Name()] = core.AccuracyByRIR(context.Background(), db, s.env.Targets)
	}
	var out []string
	for _, r := range core.Recommend(results, perRIR) {
		out = append(out, r.Text)
	}
	return out
}

// RunExperiment executes one named paper artifact (see ExperimentIDs).
func (s *Study) RunExperiment(id string, w io.Writer) error {
	e, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("routergeo: unknown experiment %q", id)
	}
	return experiments.RunOne(context.Background(), e, w, s.env)
}

// ExperimentIDs lists the reproducible artifacts in presentation order.
func ExperimentIDs() []string {
	var out []string
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

// Path is one simulated traceroute: the source description and the hop
// addresses in order.
type Path struct {
	From string
	To   string
	Hops []string
}

// SamplePaths runs n traceroutes between random ground-truth world routers
// and returns the revealed hop addresses — fodder for path-analysis
// examples such as detour detection.
func (s *Study) SamplePaths(n int, seed int64) []Path {
	w := s.env.W
	eng := traceroute.New(w)
	rng := newRand(seed)
	var out []Path
	for len(out) < n {
		src := netsim.RouterID(rng.Intn(w.NumRouters()))
		dst := netsim.RouterID(rng.Intn(w.NumRouters()))
		if src == dst {
			continue
		}
		tree := eng.BuildTree(src)
		hops := eng.Trace(rng, tree, dst, 0)
		if hops == nil {
			continue
		}
		p := Path{
			From: describeRouter(w, src),
			To:   describeRouter(w, dst),
		}
		for _, h := range hops {
			if h.Iface < 0 {
				continue
			}
			p.Hops = append(p.Hops, w.Interfaces[h.Iface].Addr.String())
		}
		out = append(out, p)
	}
	return out
}

// ASInfo describes one operator in the world.
type ASInfo struct {
	ASN         uint32
	Name        string
	Domain      string
	HomeCountry string
	Transit     bool
	Interfaces  []string
}

// Operators returns the world's ASes; withInterfaces controls whether the
// (potentially long) interface address lists are populated.
func (s *Study) Operators(withInterfaces bool) []ASInfo {
	w := s.env.W
	out := make([]ASInfo, 0, w.NumASes())
	byAS := map[int][]string{}
	if withInterfaces {
		for i := range w.Interfaces {
			r := w.Interfaces[i].Router
			byAS[w.Routers[r].AS] = append(byAS[w.Routers[r].AS], w.Interfaces[i].Addr.String())
		}
	}
	for i := range w.ASes {
		as := &w.ASes[i]
		out = append(out, ASInfo{
			ASN:         uint32(as.ASN),
			Name:        as.Name,
			Domain:      as.Domain,
			HomeCountry: as.HomeCountry,
			Transit:     as.Transit,
			Interfaces:  byAS[i],
		})
	}
	return out
}

// ExportDatabases writes the four databases in the binary dbfile format to
// dir, named like "netacuity.rgdb", and returns the paths.
func (s *Study) ExportDatabases(dir string) ([]string, error) {
	var out []string
	for _, db := range s.env.DBs {
		path := filepath.Join(dir, strings.ToLower(db.Name())+".rgdb")
		if err := dbfile.WriteFile(path, db); err != nil {
			return nil, err
		}
		out = append(out, path)
	}
	return out, nil
}

// GroundTruthSizes returns the sizes of the constituent datasets:
// DNS-based, RTT-proximity, and the merged set.
func (s *Study) GroundTruthSizes() (dns, rtt, merged int) {
	return s.env.DNS.Len(), s.env.RTTDS.Len(), s.env.GT.Len()
}

// Stats summarizes the world's scale.
type Stats struct {
	ASes, Routers, Interfaces, Links int
	ArkAddresses                     int
	GroundTruth                      int
}

// WorldStats reports the study's scale.
func (s *Study) WorldStats() Stats {
	return Stats{
		ASes:         s.env.W.NumASes(),
		Routers:      s.env.W.NumRouters(),
		Interfaces:   s.env.W.NumInterfaces(),
		Links:        s.env.W.NumLinks(),
		ArkAddresses: len(s.env.ArkAddrs),
		GroundTruth:  s.env.GT.Len(),
	}
}

// MethodOf reports which ground-truth method located an address ("" when
// the address is not in the ground truth).
func (s *Study) MethodOf(ip string) string {
	addr, err := ipx.ParseAddr(ip)
	if err != nil {
		return ""
	}
	e, ok := s.env.GT.ByAddr(addr)
	if !ok {
		return ""
	}
	return e.Method.String()
}

func describeRouter(w *netsim.World, r netsim.RouterID) string {
	as := w.ASOfRouter(r)
	city := as.PoPs[w.Routers[r].PoP].City
	return fmt.Sprintf("AS%d %s/%s", as.ASN, city.Country, city.Name)
}

// compile-time check that the groundtruth methods stay exposed through the
// facade names used above.
var _ = groundtruth.DNS
