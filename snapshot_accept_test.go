package routergeo

// Acceptance suite for the snapshot hot-reload path: a remote accuracy
// sweep served from memory-mapped snapshots must be byte-identical to
// the local evaluation even while the server hot-swaps a new snapshot
// generation mid-sweep — with the flip visible in the client's flip
// counter, in /v2/stats, and in the run manifest's taint section.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"routergeo/internal/core"
	"routergeo/internal/geodb/httpapi"
	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/obs"
)

func TestSnapshotHotReloadSweepByteIdentical(t *testing.T) {
	s := testStudy(t)
	dir := t.TempDir()
	publish := func(epoch int64) {
		for _, db := range s.env.DBs {
			path := filepath.Join(dir, strings.ToLower(db.Name())+snapshot.Ext)
			meta := snapshot.Meta{BuildEpoch: epoch, SourceFormat: "study"}
			if err := snapshot.WriteFile(path, db, meta); err != nil {
				t.Fatal(err)
			}
		}
	}
	publish(1)

	h := httpapi.NewHandler(nil)
	rel := httpapi.NewReloader(h, dir, time.Hour, nil)
	if _, err := rel.Rescan(true); err != nil {
		t.Fatal(err)
	}
	gen1 := h.Generation()

	// The flipper republishes the same data under a new build epoch on
	// the third lookup batch and completes a synchronous hot reload
	// before answering it — guaranteeing the sweep spans two generations.
	var lookups atomic.Int64
	var flipped atomic.Bool
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v2/lookup" && lookups.Add(1) == 3 {
			publish(2)
			swapped, err := rel.Rescan(false)
			if err != nil || !swapped {
				t.Errorf("mid-sweep rescan: swapped=%v err=%v", swapped, err)
			}
			flipped.Store(true)
		}
		h.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(wrapped)
	defer srv.Close()

	rec := obs.NewRun("snapshot-acceptance")
	var totalFlips int64
	for _, db := range s.env.DBs {
		c := httpapi.NewClient(srv.URL,
			httpapi.WithDatabase(db.Name()),
			httpapi.WithClientMaxBatch(200),
			httpapi.WithClientMetrics(rec.Registry()))
		remote, err := httpapi.NewRemoteProvider(c)
		if err != nil {
			t.Fatal(err)
		}
		local := core.MeasureAccuracy(context.Background(), db, s.env.Targets)
		got := core.MeasureAccuracy(context.Background(), remote, s.env.Targets)
		if !bytes.Equal(accuracyFingerprint(t, local), accuracyFingerprint(t, got)) {
			t.Errorf("%s: snapshot-served sweep diverged from local evaluation", db.Name())
		}
		if err := remote.Err(); err != nil {
			t.Errorf("%s: transport errors during sweep: %v", db.Name(), err)
		}
		flips := remote.GenerationFlips()
		totalFlips += flips
		rec.SetTaint("remote."+strings.ToLower(db.Name())+".generation_flips", flips)
	}

	// The hot reload really happened mid-sweep, with batches on both
	// sides of it.
	if !flipped.Load() {
		t.Fatalf("sweep finished in %d batches, before the flip trigger", lookups.Load())
	}
	if lookups.Load() <= 3 {
		t.Fatalf("flip was not mid-sweep: only %d lookup batches", lookups.Load())
	}
	if totalFlips < 1 {
		t.Error("no client observed the generation flip")
	}

	// The flip is visible on the /v2 surface...
	stats, err := httpapi.NewClient(srv.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generation == gen1 || stats.Generation != h.Generation() {
		t.Errorf("stats generation = %q (started %q, serving %q)",
			stats.Generation, gen1, h.Generation())
	}
	if stats.Reloads < 2 {
		t.Errorf("stats reloads = %d, want >= 2 (initial + mid-sweep)", stats.Reloads)
	}
	if len(stats.Snapshots) != len(s.env.DBs) {
		t.Errorf("stats snapshots = %d entries, want %d", len(stats.Snapshots), len(s.env.DBs))
	}
	for name, si := range stats.Snapshots {
		if si.SourceFormat != "snapshot" || si.Checksum == "" {
			t.Errorf("snapshot identity for %s incomplete: %+v", name, si)
		}
	}

	// ...and in the run manifest's taint section.
	m := rec.Manifest()
	var manifestFlips int64
	for name, n := range m.Taint {
		if strings.HasSuffix(name, ".generation_flips") {
			manifestFlips += n
		}
	}
	if manifestFlips != totalFlips || manifestFlips < 1 {
		t.Errorf("manifest taint records %d generation flips, providers saw %d",
			manifestFlips, totalFlips)
	}
}
