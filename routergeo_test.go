package routergeo

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	studyOnce sync.Once
	study     *Study
	studyErr  error
)

// testStudy builds one Quick study shared by every test in this file.
func testStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study, studyErr = New(Quick(), WithSeed(3))
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return study
}

func TestStudyBuilds(t *testing.T) {
	s := testStudy(t)
	st := s.WorldStats()
	if st.Routers == 0 || st.Interfaces == 0 || st.ArkAddresses == 0 || st.GroundTruth == 0 {
		t.Fatalf("degenerate study: %+v", st)
	}
	dns, rtt, merged := s.GroundTruthSizes()
	if dns == 0 || rtt == 0 || merged < dns || merged < rtt {
		t.Fatalf("ground-truth sizes wrong: %d/%d/%d", dns, rtt, merged)
	}
}

func TestDatabasesListed(t *testing.T) {
	s := testStudy(t)
	got := s.Databases()
	want := []string{"IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity"}
	if len(got) != len(want) {
		t.Fatalf("Databases = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Databases[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLookupAndTruth(t *testing.T) {
	s := testStudy(t)
	addrs := s.ArkAddresses()
	if len(addrs) == 0 {
		t.Fatal("no Ark addresses")
	}
	ip := addrs[0]
	truth, ok := s.TrueLocation(ip)
	if !ok || truth.Country == "" || truth.City == "" {
		t.Fatalf("TrueLocation(%s) = %+v, %v", ip, truth, ok)
	}
	// NetAcuity has full coverage; the answer must exist.
	loc, ok := s.Lookup("NetAcuity", ip)
	if !ok || loc.Country == "" {
		t.Fatalf("Lookup(NetAcuity, %s) = %+v, %v", ip, loc, ok)
	}
	// Garbage inputs fail cleanly.
	if _, ok := s.Lookup("NetAcuity", "not-an-ip"); ok {
		t.Error("bad IP should miss")
	}
	if _, ok := s.TrueLocation("355.1.1.1"); ok {
		t.Error("bad IP should have no truth")
	}
}

func TestAccuracySummaries(t *testing.T) {
	s := testStudy(t)
	neta := s.Accuracy("NetAcuity")
	if neta.Targets == 0 {
		t.Fatal("no targets")
	}
	if neta.CityCoverage < 0.9 {
		t.Errorf("NetAcuity city coverage = %v", neta.CityCoverage)
	}
	ip2 := s.Accuracy("IP2Location-Lite")
	if neta.CountryAccuracy <= ip2.CountryAccuracy {
		t.Errorf("NetAcuity (%v) should beat IP2Location (%v) at country level",
			neta.CountryAccuracy, ip2.CountryAccuracy)
	}
	byRegion := s.AccuracyByRegion("NetAcuity")
	if len(byRegion) < 3 {
		t.Errorf("only %d regions in breakdown", len(byRegion))
	}
	totalRegional := 0
	for _, a := range byRegion {
		totalRegional += a.Targets
	}
	if totalRegional != neta.Targets {
		t.Errorf("regional targets %d != total %d", totalRegional, neta.Targets)
	}
}

func TestGroundTruthEntries(t *testing.T) {
	s := testStudy(t)
	gt := s.GroundTruth()
	methods := map[string]int{}
	for _, e := range gt {
		if e.Country == "" || e.IP == "" {
			t.Fatalf("malformed entry %+v", e)
		}
		methods[e.Method]++
		if got := s.MethodOf(e.IP); got != e.Method {
			t.Fatalf("MethodOf(%s) = %q, want %q", e.IP, got, e.Method)
		}
	}
	if methods["DNS-based"] == 0 || methods["RTT-proximity"] == 0 {
		t.Errorf("method mix degenerate: %v", methods)
	}
	if s.MethodOf("203.0.113.99") != "" {
		t.Error("non-GT address should have no method")
	}
}

func TestDisagreement(t *testing.T) {
	s := testStudy(t)
	frac, n := s.Disagreement("IP2Location-Lite", "NetAcuity")
	if n == 0 {
		t.Fatal("no commonly answered addresses")
	}
	if frac <= 0 || frac >= 1 {
		t.Errorf("disagreement fraction = %v", frac)
	}
	// The same-family MaxMind pair must disagree less than cross-vendor
	// pairs (Figure 1's core finding).
	mm, _ := s.Disagreement("MaxMind-GeoLite", "MaxMind-Paid")
	if mm >= frac {
		t.Errorf("MaxMind pair disagreement (%v) should be below cross-vendor (%v)", mm, frac)
	}
}

func TestRecommendations(t *testing.T) {
	s := testStudy(t)
	recs := s.Recommendations()
	if len(recs) < 3 {
		t.Fatalf("only %d recommendations", len(recs))
	}
	joined := strings.Join(recs, "\n")
	if !strings.Contains(joined, "NetAcuity") {
		t.Error("NetAcuity should appear in the recommendations")
	}
}

func TestRunExperimentAndIDs(t *testing.T) {
	s := testStudy(t)
	ids := ExperimentIDs()
	if len(ids) != 14 {
		t.Fatalf("got %d experiments: %v", len(ids), ids)
	}
	var buf bytes.Buffer
	if err := s.RunExperiment("table1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DNS-based") {
		t.Errorf("table1 output unexpected: %q", buf.String()[:80])
	}
	if err := s.RunExperiment("nope", &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestSamplePaths(t *testing.T) {
	s := testStudy(t)
	paths := s.SamplePaths(5, 7)
	if len(paths) != 5 {
		t.Fatalf("got %d paths", len(paths))
	}
	for _, p := range paths {
		if p.From == "" || p.To == "" {
			t.Fatalf("unlabelled path %+v", p)
		}
		for _, hop := range p.Hops {
			if _, ok := s.TrueLocation(hop); !ok {
				t.Fatalf("path hop %s unknown to the world", hop)
			}
		}
	}
	// Determinism.
	again := s.SamplePaths(5, 7)
	for i := range paths {
		if len(again[i].Hops) != len(paths[i].Hops) {
			t.Fatal("SamplePaths not deterministic")
		}
	}
}

func TestOperators(t *testing.T) {
	s := testStudy(t)
	ops := s.Operators(false)
	var cogent *ASInfo
	for i := range ops {
		if ops[i].Domain == "cogentco.com" {
			cogent = &ops[i]
		}
	}
	if cogent == nil {
		t.Fatal("cogent missing from operators")
	}
	if !cogent.Transit || cogent.ASN != 174 {
		t.Errorf("cogent = %+v", cogent)
	}
	withIfaces := s.Operators(true)
	total := 0
	for _, op := range withIfaces {
		total += len(op.Interfaces)
	}
	if total != s.WorldStats().Interfaces {
		t.Errorf("operator interfaces %d != world %d", total, s.WorldStats().Interfaces)
	}
}

func TestExportDatabases(t *testing.T) {
	s := testStudy(t)
	dir := t.TempDir()
	paths, err := s.ExportDatabases(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("exported %d files", len(paths))
	}
	for _, p := range paths {
		if filepath.Dir(p) != dir {
			t.Errorf("export escaped directory: %s", p)
		}
	}
}
