package routergeo

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, per DESIGN.md's experiment index. Each benchmark
// measures a full regeneration of its artifact over a shared, once-built
// environment (the environment build itself is benchmarked separately in
// BenchmarkBuildEnvironment). Run with:
//
//	go test -bench=. -benchmem
//
// The printed artifacts themselves come from `go run ./cmd/routergeo`;
// the benchmarks quantify the cost of every analysis.

import (
	"context"
	"io"
	"net/http/httptest"
	"sync"
	"testing"

	"routergeo/internal/experiments"
	"routergeo/internal/geodb/httpapi"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		benchEnv, benchErr = experiments.NewEnv(context.Background(), cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// benchExperiment runs one registered experiment repeatedly.
func benchExperiment(b *testing.B, id string) {
	env := benchEnvironment(b)
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunOne(context.Background(), exp, io.Discard, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildEnvironment measures the full pipeline: world, Ark sweep,
// Atlas fleets, ground truth and all four vendor databases.
func BenchmarkBuildEnvironment(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.World.ASes = 250 // quick scale; the default world is benched once below
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewEnv(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1GroundTruthStats regenerates Table 1.
func BenchmarkTable1GroundTruthStats(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkSec31DNSCorrectness regenerates §3.1's overlap and churn
// analyses.
func BenchmarkSec31DNSCorrectness(b *testing.B) { benchExperiment(b, "sec31") }

// BenchmarkSec32RTTCorrectness regenerates §3.2's disqualification funnel.
func BenchmarkSec32RTTCorrectness(b *testing.B) { benchExperiment(b, "sec32") }

// BenchmarkSec4CityCoordValidation regenerates the §4 methodology checks.
func BenchmarkSec4CityCoordValidation(b *testing.B) { benchExperiment(b, "sec4") }

// BenchmarkSec51CoverageConsistency regenerates §5.1's coverage and
// country-agreement analysis over the Ark set.
func BenchmarkSec51CoverageConsistency(b *testing.B) { benchExperiment(b, "sec51") }

// BenchmarkFigure1PairwiseCDF regenerates Figure 1.
func BenchmarkFigure1PairwiseCDF(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkSec521GroundTruthAccuracy regenerates §5.2.1.
func BenchmarkSec521GroundTruthAccuracy(b *testing.B) { benchExperiment(b, "sec521") }

// BenchmarkFigure2ErrorCDF regenerates Figure 2.
func BenchmarkFigure2ErrorCDF(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFigure3CountryByRIR regenerates Figure 3.
func BenchmarkFigure3CountryByRIR(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4PerCountry regenerates Figure 4.
func BenchmarkFigure4PerCountry(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5CityErrorByRIR regenerates Figure 5a/5b.
func BenchmarkFigure5CityErrorByRIR(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkSec523ARINCaseStudy regenerates §5.2.3.
func BenchmarkSec523ARINCaseStudy(b *testing.B) { benchExperiment(b, "sec523") }

// BenchmarkSec524PerMethodAccuracy regenerates §5.2.4.
func BenchmarkSec524PerMethodAccuracy(b *testing.B) { benchExperiment(b, "sec524") }

// BenchmarkRecommendations regenerates the §6 synthesis.
func BenchmarkRecommendations(b *testing.B) { benchExperiment(b, "rec") }

// BenchmarkLookup measures single-address database queries, the hot path
// of any downstream user of the databases.
func BenchmarkLookup(b *testing.B) {
	env := benchEnvironment(b)
	db := env.DB("NetAcuity")
	addrs := env.ArkAddrs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Lookup(addrs[i%len(addrs)])
	}
}

// remoteBenchAddrs is the batch size the remote benchmarks resolve per
// iteration, so ns/op is directly comparable between the single-lookup
// and batched transports.
const remoteBenchAddrs = 1000

// BenchmarkRemoteLookupSingle pays the original wire cost: one GET
// /v1/lookup round trip per address.
func BenchmarkRemoteLookupSingle(b *testing.B) {
	env := benchEnvironment(b)
	srv := httptest.NewServer(httpapi.NewHandler(env.DBs))
	defer srv.Close()
	c := httpapi.NewClient(srv.URL, httpapi.WithDatabase("NetAcuity"))
	addrs := env.ArkAddrs[:remoteBenchAddrs]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			c.Lookup(a)
		}
	}
}

// BenchmarkRemoteLookupBatch resolves the same addresses through POST
// /v2/lookup with a bounded worker pool — the transport RemoteProvider
// uses. The per-iteration delta against BenchmarkRemoteLookupSingle is
// the batching win.
func BenchmarkRemoteLookupBatch(b *testing.B) {
	env := benchEnvironment(b)
	srv := httptest.NewServer(httpapi.NewHandler(env.DBs))
	defer srv.Close()
	c := httpapi.NewClient(srv.URL,
		httpapi.WithDatabase("NetAcuity"),
		httpapi.WithConcurrency(8),
		httpapi.WithClientMaxBatch(250))
	ips := make([]string, remoteBenchAddrs)
	for i := range ips {
		ips[i] = env.ArkAddrs[i].String()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BatchLookup(context.Background(), ips); err != nil {
			b.Fatal(err)
		}
	}
}
