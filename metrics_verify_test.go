package routergeo

// Acceptance suite for the standards-facing observability surface, run
// by `make metrics-verify`. One half boots the real geoserve binary
// against a CSV fixture, scrapes GET /metrics, and holds the output to
// the in-repo exposition linter (the same strictness promtool applies);
// the other half watches GET /v2/events over SSE while a remote sweep,
// a mid-sweep hot reload, and a circuit-breaker trip happen — the live
// dashboard story, end to end.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"routergeo/internal/core"
	"routergeo/internal/geodb/httpapi"
	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/ipx"
	"routergeo/internal/obs"
)

// verifyFixtureCSV is the database geoserve serves during the scrape
// test: one city-level block and one country-level block, enough to
// produce hits, misses, and latency observations.
const verifyFixtureCSV = `lo,hi,country,city,lat,lon,resolution,block_bits
10.0.0.0,10.0.0.255,US,Dallas,32.7767,-96.7970,city,24
10.0.1.0,10.0.1.255,DE,,,,country,24
`

// TestMetricsVerifyExposition builds the real geoserve binary, serves
// the fixture on an ephemeral port, and validates the Prometheus scrape
// with the in-repo parser — covering registry metrics, the ambient
// process/runtime collectors, content negotiation, the SSE endpoint's
// liveness, and a clean SIGTERM exit.
func TestMetricsVerifyExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real geoserve binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "geoserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/geoserve").CombinedOutput(); err != nil {
		t.Fatalf("building geoserve: %v\n%s", err, out)
	}
	csvPath := filepath.Join(dir, "verifydb.csv")
	if err := os.WriteFile(csvPath, []byte(verifyFixtureCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-db", csvPath,
		"-quiet", "-grace", "1ms", "-drain", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	t.Cleanup(func() {
		if !exited {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The kernel picks the port; the "listening on" line is how callers
	// learn it. Keep draining stderr afterwards so the process never
	// blocks on the pipe and the shutdown banner is captured.
	var stderrBuf bytes.Buffer
	var stderrMu sync.Mutex
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			stderrMu.Lock()
			stderrBuf.WriteString(line + "\n")
			stderrMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	var baseURL string
	select {
	case baseURL = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("geoserve never printed its listening address")
	}

	// Traffic first, so the scrape has request counters and latency
	// observations to expose: two hits, one miss.
	for _, ip := range []string{"10.0.0.5", "10.0.1.7", "192.0.2.1"} {
		resp, err := http.Get(baseURL + "/v1/lookup?ip=" + ip)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d\n%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	fams, err := obs.LintExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition failed lint: %v\n%s", err, body)
	}
	for _, name := range []string{
		"routergeo_http_requests_total",
		"routergeo_http_latency_ms",
		"routergeo_db_verifydb_hits_total",
		"routergeo_db_verifydb_misses_total",
		"routergeo_build_info",
		"process_cpu_seconds_total",
		"go_goroutines",
		"go_gc_pauses_seconds",
	} {
		if fams[name] == nil {
			t.Errorf("scrape missing metric family %s", name)
		}
	}
	if f := fams["routergeo_http_latency_ms"]; f != nil && f.Type != "histogram" {
		t.Errorf("routergeo_http_latency_ms type = %q, want histogram", f.Type)
	}
	// /metrics lives outside the metrics middleware, so the scrape does
	// not count itself: exactly the three lookups above.
	if !strings.Contains(string(body), "routergeo_http_requests_total 3\n") {
		t.Errorf("scrape should report exactly 3 requests:\n%s", grepLines(string(body), "http_requests"))
	}

	// Content negotiation: a JSON-only Accept header selects the raw
	// registry snapshot on the same path.
	req, _ := http.NewRequest("GET", baseURL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("JSON negotiation Content-Type = %q", ct)
	}
	if !bytes.Contains(jbody, []byte(`"counters"`)) {
		t.Errorf("JSON snapshot missing counters section:\n%s", jbody)
	}

	// The event stream answers on the main listener and starts framing
	// immediately (the retry hint is the first line out).
	sresp, err := http.Get(baseURL + "/v2/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := sresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("/v2/events Content-Type = %q", ct)
	}
	line, err := bufio.NewReader(sresp.Body).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "retry:") {
		t.Errorf("first SSE line = %q, %v; want retry hint", line, err)
	}
	sresp.Body.Close()

	// SIGTERM drains and exits cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		exited = true
		if err != nil {
			stderrMu.Lock()
			defer stderrMu.Unlock()
			t.Fatalf("geoserve exit after SIGTERM: %v\n%s", err, stderrBuf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("geoserve did not exit within 15s of SIGTERM")
	}
	stderrMu.Lock()
	defer stderrMu.Unlock()
	if !strings.Contains(stderrBuf.String(), "shutdown complete") {
		t.Errorf("shutdown banner missing from stderr:\n%s", stderrBuf.String())
	}
}

// grepLines returns the lines of s containing substr, for error output.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsVerifyEventStream holds /v2/events to the acceptance bar:
// a remote sweep with a mid-sweep snapshot hot reload and a client
// circuit-breaker trip must all be visible live on one SSE stream —
// progress and span boundaries, the generation swap, and the breaker
// transition.
func TestMetricsVerifyEventStream(t *testing.T) {
	s := testStudy(t)
	dir := t.TempDir()
	db := s.env.DBs[0]
	publish := func(epoch int64) {
		path := filepath.Join(dir, strings.ToLower(db.Name())+snapshot.Ext)
		meta := snapshot.Meta{BuildEpoch: epoch, SourceFormat: "study"}
		if err := snapshot.WriteFile(path, db, meta); err != nil {
			t.Fatal(err)
		}
	}
	publish(1)

	// The handler rides the process-default event bus, so breaker
	// transitions (published by clients onto that bus) and sweep
	// progress/span events share the stream with the server's own
	// swap/reload events — one stream shows the whole story.
	h := httpapi.NewHandler(nil)
	rel := httpapi.NewReloader(h, dir, time.Hour, nil)
	if _, err := rel.Rescan(true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close) // registered before the stream's body close: LIFO closes the stream first

	sresp, err := http.Get(srv.URL + "/v2/events")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sresp.Body.Close() })
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/events = %d", sresp.StatusCode)
	}
	// The retry hint is written after the handler subscribes to the bus,
	// so once it arrives the stream is guaranteed to see every event the
	// sweep below publishes.
	br := bufio.NewReader(sresp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "retry:") {
		t.Fatalf("first SSE line = %q, %v; want retry hint", line, err)
	}
	var mu sync.Mutex
	kinds := map[string]int{}
	go func() {
		sc := bufio.NewScanner(br)
		for sc.Scan() {
			if kind, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
				mu.Lock()
				kinds[kind]++
				mu.Unlock()
			}
		}
	}()

	// A remote accuracy sweep (span events), with the snapshot
	// republished under a new epoch and swapped in mid-run.
	client := httpapi.NewClient(srv.URL, httpapi.WithDatabase(db.Name()))
	remote, err := httpapi.NewRemoteProvider(client)
	if err != nil {
		t.Fatal(err)
	}
	half := len(s.env.Targets) / 2
	core.MeasureAccuracy(context.Background(), remote, s.env.Targets[:half])
	publish(2)
	if swapped, err := rel.Rescan(false); err != nil || !swapped {
		t.Fatalf("mid-sweep rescan: swapped=%v err=%v", swapped, err)
	}
	core.MeasureAccuracy(context.Background(), remote, s.env.Targets[half:])

	// A local coverage pass emits progress events (the bus has a
	// subscriber, so even a short loop publishes its ticks).
	addrs := make([]ipx.Addr, 0, 64)
	for _, tgt := range s.env.Targets {
		addrs = append(addrs, tgt.Addr)
		if len(addrs) == cap(addrs) {
			break
		}
	}
	core.MeasureCoverage(context.Background(), db, addrs)

	// Trip a circuit breaker: one failed attempt against a dead server
	// with threshold 1 flips closed→open, published on the default bus.
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // keep the URL, kill the listener: connections now refuse
	broken := httpapi.NewClient(dead.URL,
		httpapi.WithDatabase(db.Name()),
		httpapi.WithRetries(0),
		httpapi.WithBreaker(1, time.Hour),
		httpapi.WithClientLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))) // the refused dial is the point
	broken.Lookup(ipx.MustParseAddr("10.0.0.1"))

	waitForEvents(t, &mu, kinds,
		"span.start", "span.end",
		"progress.start", "progress.done",
		"generation.swap", "breaker")
}

// waitForEvents polls until every kind has been seen on the stream.
func waitForEvents(t *testing.T, mu *sync.Mutex, kinds map[string]int, want ...string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		var missing []string
		for _, k := range want {
			if kinds[k] == 0 {
				missing = append(missing, k)
			}
		}
		seen := fmt.Sprintf("%v", kinds)
		mu.Unlock()
		if len(missing) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("event stream never showed %v (saw %s)", missing, seen)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
