// Command gtbuild builds and validates the ground-truth datasets the way
// §2.3 and §3 of the paper do, printing Table 1, the per-domain DNS
// breakdown, the RTT disqualification funnel, and the cross-dataset
// agreement checks. Optionally it dumps the merged dataset as CSV (the
// shape the paper released via IMPACT), or exports it as a queryable
// geolocation database in any of the repo's formats.
//
// Usage:
//
//	gtbuild [-seed N] [-ases N] [-csv out.csv] [-out db -format {csv,dbfile,snap}]
//
// -out writes the ground truth as a per-address (/32) database named
// "GroundTruth", usable anywhere an exported vendor database is — with
// geolookup, geoserve, or geosnap. -format picks the container (default:
// by extension, else dbfile); "snap" writes an RGSP snapshot directly.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"routergeo/internal/experiments"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbload"
	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/ipx"
	"routergeo/internal/obs"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "world seed")
		ases      = flag.Int("ases", 0, "number of ASes (0 = default)")
		csvPath   = flag.String("csv", "", "write the merged ground truth as CSV to this path")
		outPath   = flag.String("out", "", "export the ground truth as a geolocation database to this path")
		debugAddr = flag.String("debug-addr", "", "optional debug listener serving pprof, /metrics and the /v2/events stream")
		format    = dbload.Auto
	)
	lf := obs.AddLogFlags(flag.CommandLine)
	flag.Var(&format, "format", "with -out: database format (csv, dbfile or snap; default: by extension)")
	flag.Parse()

	if _, err := lf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gtbuild:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, nil, obs.Events(), nil)
	}

	cfg := experiments.DefaultConfig()
	cfg.World.Seed = *seed
	if *ases > 0 {
		cfg.World.ASes = *ases
	}
	ctx := context.Background()
	env, err := experiments.NewEnv(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtbuild:", err)
		os.Exit(1)
	}

	for _, id := range []string{"table1", "sec31", "sec32"} {
		exp, _ := experiments.ByID(id)
		fmt.Printf("\n================ %s — %s ================\n", exp.ID, exp.Title)
		if err := experiments.RunOne(ctx, exp, os.Stdout, env); err != nil {
			fmt.Fprintln(os.Stderr, "gtbuild:", err)
			os.Exit(1)
		}
	}

	if *outPath != "" {
		db, err := groundTruthDB(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gtbuild:", err)
			os.Exit(1)
		}
		meta := snapshot.Meta{BuildEpoch: time.Now().Unix(), SourceFormat: "groundtruth"}
		if err := dbload.WriteFile(*outPath, db, format, meta); err != nil {
			fmt.Fprintln(os.Stderr, "gtbuild:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s database (%d /32 records) to %s\n",
			db.Name(), db.Len(), *outPath)
	}

	if *csvPath == "" {
		return
	}
	f, err := os.Create(*csvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtbuild:", err)
		os.Exit(1)
	}
	w := csv.NewWriter(f)
	// The IMPACT release shape: address, lat, lon, country, method.
	if err := w.Write([]string{"ip", "lat", "lon", "country", "method", "rir"}); err != nil {
		fmt.Fprintln(os.Stderr, "gtbuild:", err)
		os.Exit(1)
	}
	for _, e := range env.GT.Entries {
		rec := []string{
			e.Addr.String(),
			strconv.FormatFloat(e.Coord.Lat, 'f', 4, 64),
			strconv.FormatFloat(e.Coord.Lon, 'f', 4, 64),
			e.Country,
			e.Method.String(),
			env.W.Reg.RIROf(e.Addr).String(),
		}
		if err := w.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, "gtbuild:", err)
			os.Exit(1)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintln(os.Stderr, "gtbuild:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gtbuild:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d ground-truth rows to %s\n", env.GT.Len(), *csvPath)
}

// groundTruthDB turns the merged ground truth into a queryable database
// of per-address records. GT entries carry coordinates and country but no
// city name, so the city is looked up from the world through the entry's
// interface — the same authoritative location the entry was derived from.
func groundTruthDB(env *experiments.Env) (*geodb.DB, error) {
	b := geodb.NewBuilder("GroundTruth")
	for _, e := range env.GT.Entries {
		city := env.W.CityOf(e.Iface)
		b.Add(0, ipx.Range{Lo: e.Addr, Hi: e.Addr}, geodb.Record{
			Country:    e.Country,
			City:       city.Name,
			Coord:      e.Coord,
			Resolution: geodb.ResolutionCity,
			BlockBits:  32,
		})
	}
	return b.Build()
}
