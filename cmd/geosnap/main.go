// Command geosnap compiles geolocation databases into RGSP snapshots —
// the memory-mappable format geoserve hot-reloads from — and inspects
// existing snapshot files. It is the publisher half of the zero-downtime
// deployment story: build or convert databases here, write them into the
// server's -snap-dir (the writer renames complete files into place, so a
// polling server never observes a partial snapshot), and the server
// swaps the new generation in without dropping a request.
//
// Usage:
//
//	geosnap -build [-seed N] -out dir [-epoch E]      # build a study, snapshot its databases
//	geosnap -build -epochs N -interval-months M ...   # publish a longitudinal snapshot series
//	geosnap -db file [-db ...] -out dir_or_file       # convert existing database files
//	geosnap -info file.rgsnap [file...]               # print snapshot identity and stats
//	geosnap -diff old.rgsnap new.rgsnap               # diff two snapshots of one database
//
// Conversion accepts any supported input format (CSV dump, RGDB binary,
// or an existing snapshot), sniffed by magic bytes. -epoch overrides the
// recorded build time (unix seconds), which feeds the generation id:
// re-publishing identical data under a new epoch yields a new generation,
// which is how an operator forces a visible flip without changing bytes
// of the database itself. Left unset, the epoch is deterministic — a
// study build derives it from the world seed, a conversion keeps each
// source's recorded epoch — so the same inputs always republish the same
// bytes. An explicit -epoch value is honored verbatim, including 0.
//
// With -epochs N (and -build), geosnap publishes a time series instead
// of a single generation: epoch k rebuilds the four vendor databases as
// of k·M months on the world's churn timeline (the same evolution the
// §3 analyses consume) and writes them under <out>/epoch-00k/, each
// stamped with a build epoch M months after the previous. The series is
// a pure function of the seed: re-running the command reproduces every
// snapshot byte for byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"routergeo/internal/experiments"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbload"
	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/obs"
	"routergeo/internal/stats"
)

type dbList []string

func (d *dbList) String() string     { return strings.Join(*d, ",") }
func (d *dbList) Set(v string) error { *d = append(*d, v); return nil }

// epochBase anchors the deterministic default build epoch for study
// builds in the paper's data-collection era (mid-2017); the seed offsets
// it so different worlds never collide on a generation id by epoch
// alone.
const epochBase = 1_500_000_000

// secondsPerMonth is the mean Gregorian month, the step between epochs
// in a published series.
const secondsPerMonth = 2_629_800

// buildEpochFor resolves the tri-state -epoch flag for a study build:
// an explicitly set value is honored verbatim — including 0, which used
// to be unrepresentable because it meant "now" — and an unset flag
// yields a seed-derived default, so the default publish is reproducible
// instead of stamping wall-clock time.
func buildEpochFor(seed, epoch int64, epochSet bool) int64 {
	if epochSet {
		return epoch
	}
	return epochBase + seed
}

func main() {
	var (
		build     = flag.Bool("build", false, "build a study and snapshot its four vendor databases")
		seed      = flag.Int64("seed", 1, "world seed (with -build)")
		out       = flag.String("out", "", "output directory (or single-file path with exactly one -db)")
		epoch     = flag.Int64("epoch", 0, "build epoch recorded in the snapshot, unix seconds (unset = deterministic: seed-derived for -build, source-preserved for -db)")
		epochs    = flag.Int("epochs", 1, "number of epochs to publish (with -build; >1 writes a series under <out>/epoch-NNN/)")
		interval  = flag.Float64("interval-months", 4, "months of churn between epochs in a series (with -epochs)")
		info      = flag.Bool("info", false, "inspect snapshot files named as arguments instead of writing")
		diff      = flag.Bool("diff", false, "diff the two snapshot files named as arguments")
		debugAddr = flag.String("debug-addr", "", "optional debug listener serving pprof, /metrics and the /v2/events stream")
		dbPaths   dbList
	)
	lf := obs.AddLogFlags(flag.CommandLine)
	flag.Var(&dbPaths, "db", "database file to convert, any format (repeatable)")
	flag.Parse()

	// The -epoch flag is tri-state: only an explicit value (including 0)
	// overrides the deterministic default.
	epochSet := false
	flag.CommandLine.Visit(func(f *flag.Flag) {
		if f.Name == "epoch" {
			epochSet = true
		}
	})

	if _, err := lf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "geosnap:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, nil, obs.Events(), nil)
	}

	if *info {
		os.Exit(infoMain(flag.Args()))
	}
	if *diff {
		os.Exit(diffMain(flag.Args()))
	}

	if *out == "" || (*build == (len(dbPaths) > 0)) || *epochs < 1 || *interval <= 0 {
		fmt.Fprintln(os.Stderr, "usage: geosnap -build [-seed N] -out dir [-epoch E] [-epochs N -interval-months M]")
		fmt.Fprintln(os.Stderr, "       geosnap -db file [-db ...] -out dir_or_file [-epoch E]")
		fmt.Fprintln(os.Stderr, "       geosnap -info file.rgsnap [file...]")
		fmt.Fprintln(os.Stderr, "       geosnap -diff old.rgsnap new.rgsnap")
		os.Exit(2)
	}
	if *epochs > 1 && !*build {
		fmt.Fprintln(os.Stderr, "geosnap: -epochs needs -build (a series rebuilds the study per epoch)")
		os.Exit(2)
	}

	if *build {
		os.Exit(buildMain(*seed, *out, *epoch, epochSet, *epochs, *interval))
	}

	var dbs []*geodb.DB
	for _, p := range dbPaths {
		l, err := dbload.Open(p, dbload.Auto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geosnap:", err)
			os.Exit(1)
		}
		// The mapping (if any) stays open until the process exits; the
		// write below only reads from it.
		dbs = append(dbs, l.DB)
	}

	// A single input may target a file path directly; everything else
	// writes <out>/<name>.rgsnap per database. Without an explicit
	// -epoch, each conversion keeps its source's recorded epoch, so
	// converting the same file twice yields the same bytes.
	singleFile := len(dbs) == 1 && strings.HasSuffix(*out, snapshot.Ext)
	if !singleFile {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "geosnap:", err)
			os.Exit(1)
		}
	}
	for _, db := range dbs {
		path := *out
		if !singleFile {
			path = filepath.Join(*out, strings.ToLower(db.Name())+snapshot.Ext)
		}
		meta := snapshot.Meta{
			BuildEpoch:   db.Meta().BuildEpoch,
			SourceFormat: db.Meta().SourceFormat,
		}
		if epochSet {
			meta.BuildEpoch = *epoch
		}
		if err := writeSnapshot(path, db, meta); err != nil {
			fmt.Fprintln(os.Stderr, "geosnap:", err)
			os.Exit(1)
		}
	}
}

// buildMain builds the study and publishes one generation — or, with
// epochs > 1, a dated series with each epoch's databases rebuilt at the
// matching churn horizon.
func buildMain(seed int64, out string, epoch int64, epochSet bool, epochs int, intervalMonths float64) int {
	base := buildEpochFor(seed, epoch, epochSet)

	cfg := experiments.DefaultConfig()
	cfg.World.Seed = seed
	fmt.Fprintln(os.Stderr, "building study...")
	start := time.Now()
	env, err := experiments.NewEnv(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geosnap:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "built in %v\n", time.Since(start).Round(time.Millisecond))

	for k := 0; k < epochs; k++ {
		dbs := env.DBs
		if k > 0 {
			dbs, err = env.BuildDBsAt(context.Background(), float64(k)*intervalMonths)
			if err != nil {
				fmt.Fprintln(os.Stderr, "geosnap:", err)
				return 1
			}
		}
		dir := out
		if epochs > 1 {
			dir = filepath.Join(out, fmt.Sprintf("epoch-%03d", k))
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "geosnap:", err)
			return 1
		}
		meta := snapshot.Meta{
			BuildEpoch:   base + int64(float64(k)*intervalMonths*secondsPerMonth),
			SourceFormat: "study",
		}
		for _, db := range dbs {
			path := filepath.Join(dir, strings.ToLower(db.Name())+snapshot.Ext)
			if err := writeSnapshot(path, db, meta); err != nil {
				fmt.Fprintln(os.Stderr, "geosnap:", err)
				return 1
			}
		}
	}
	return 0
}

func writeSnapshot(path string, db *geodb.DB, meta snapshot.Meta) error {
	if meta.SourceFormat == "" {
		meta.SourceFormat = db.Meta().SourceFormat
	}
	if err := snapshot.WriteFile(path, db, meta); err != nil {
		return err
	}
	si, err := snapshot.Inspect(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: generation %s, %d ranges, %d records, %d bytes\n",
		path, si.Generation, si.Ranges, si.Records, si.Size)
	return nil
}

// infoMain prints the identity block of each snapshot — the same fields
// /v2/databases reports for a served generation.
func infoMain(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: geosnap -info file.rgsnap [file...]")
		return 2
	}
	exit := 0
	for _, p := range paths {
		si, err := snapshot.Inspect(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geosnap: %s: %v\n", p, err)
			exit = 1
			continue
		}
		fmt.Printf("%s\n", p)
		fmt.Printf("  name:          %s\n", si.Name)
		fmt.Printf("  generation:    %s\n", si.Generation)
		fmt.Printf("  checksum:      %016x\n", si.Checksum)
		fmt.Printf("  build epoch:   %d (%s)\n", si.BuildEpoch,
			time.Unix(si.BuildEpoch, 0).UTC().Format(time.RFC3339))
		fmt.Printf("  source format: %s\n", si.SourceFormat)
		fmt.Printf("  ranges:        %d\n", si.Ranges)
		fmt.Printf("  records:      %d\n", si.Records)
		fmt.Printf("  size:          %d bytes\n", si.Size)
	}
	return exit
}

// diffMain compares two snapshots of the same database across epochs and
// prints the range-level churn report: segments and addresses added,
// removed, moved and unchanged, plus the distribution of how far moved
// blocks traveled. The output is deterministic for a given input pair.
func diffMain(paths []string) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: geosnap -diff old.rgsnap new.rgsnap")
		return 2
	}
	load := func(p string) (*geodb.DB, error) {
		l, err := dbload.Open(p, dbload.Auto)
		if err != nil {
			return nil, err
		}
		return l.DB, nil
	}
	oldDB, err := load(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "geosnap:", err)
		return 1
	}
	newDB, err := load(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "geosnap:", err)
		return 1
	}

	d := snapshot.Compare(oldDB, newDB)
	fmt.Printf("%s -> %s\n", paths[0], paths[1])
	fmt.Printf("  added:     %6d segments  %10d addrs\n", d.AddedSegments, d.AddedAddrs)
	fmt.Printf("  removed:   %6d segments  %10d addrs\n", d.RemovedSegments, d.RemovedAddrs)
	fmt.Printf("  moved:     %6d segments  %10d addrs\n", d.MovedSegments, d.MovedAddrs)
	fmt.Printf("  unchanged: %6d segments  %10d addrs\n", d.UnchangedSegments, d.UnchangedAddrs)
	if e := d.Distances; e != nil && e.N() > 0 {
		fmt.Printf("  move distance (km over %d city moves):\n", e.N())
		fmt.Printf("    p50 %.1f  p90 %.1f  p99 %.1f  max %.1f  within 40km %s\n",
			e.Quantile(0.50), e.Quantile(0.90), e.Quantile(0.99), e.Max(),
			stats.Pct(e.FractionAtOrBelow(40)))
	}
	return 0
}
