// Command geosnap compiles geolocation databases into RGSP snapshots —
// the memory-mappable format geoserve hot-reloads from — and inspects
// existing snapshot files. It is the publisher half of the zero-downtime
// deployment story: build or convert databases here, write them into the
// server's -snap-dir (the writer renames complete files into place, so a
// polling server never observes a partial snapshot), and the server
// swaps the new generation in without dropping a request.
//
// Usage:
//
//	geosnap -build [-seed N] -out dir [-epoch E]     # build a study, snapshot its databases
//	geosnap -db file [-db ...] -out dir_or_file      # convert existing database files
//	geosnap -info file.rgsnap [file...]              # print snapshot identity and stats
//
// Conversion accepts any supported input format (CSV dump, RGDB binary,
// or an existing snapshot), sniffed by magic bytes. -epoch overrides the
// recorded build time (unix seconds), which feeds the generation id:
// re-publishing identical data under a new epoch yields a new generation,
// which is how an operator forces a visible flip without changing bytes
// of the database itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"routergeo/internal/experiments"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbload"
	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/obs"
)

type dbList []string

func (d *dbList) String() string     { return strings.Join(*d, ",") }
func (d *dbList) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var (
		build     = flag.Bool("build", false, "build a study and snapshot its four vendor databases")
		seed      = flag.Int64("seed", 1, "world seed (with -build)")
		out       = flag.String("out", "", "output directory (or single-file path with exactly one -db)")
		epoch     = flag.Int64("epoch", 0, "build epoch recorded in the snapshot, unix seconds (0 = now)")
		info      = flag.Bool("info", false, "inspect snapshot files named as arguments instead of writing")
		debugAddr = flag.String("debug-addr", "", "optional debug listener serving pprof, /metrics and the /v2/events stream")
		dbPaths   dbList
	)
	lf := obs.AddLogFlags(flag.CommandLine)
	flag.Var(&dbPaths, "db", "database file to convert, any format (repeatable)")
	flag.Parse()

	if _, err := lf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "geosnap:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, nil, obs.Events(), nil)
	}

	if *info {
		os.Exit(infoMain(flag.Args()))
	}

	if *out == "" || (*build == (len(dbPaths) > 0)) {
		fmt.Fprintln(os.Stderr, "usage: geosnap -build [-seed N] -out dir [-epoch E]")
		fmt.Fprintln(os.Stderr, "       geosnap -db file [-db ...] -out dir_or_file [-epoch E]")
		fmt.Fprintln(os.Stderr, "       geosnap -info file.rgsnap [file...]")
		os.Exit(2)
	}

	meta := snapshot.Meta{BuildEpoch: *epoch}
	if meta.BuildEpoch == 0 {
		meta.BuildEpoch = time.Now().Unix()
	}

	var dbs []*geodb.DB
	switch {
	case *build:
		cfg := experiments.DefaultConfig()
		cfg.World.Seed = *seed
		fmt.Fprintln(os.Stderr, "building study...")
		start := time.Now()
		env, err := experiments.NewEnv(context.Background(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geosnap:", err)
			os.Exit(1)
		}
		dbs = env.DBs
		meta.SourceFormat = "study"
		fmt.Fprintf(os.Stderr, "built in %v\n", time.Since(start).Round(time.Millisecond))
	default:
		for _, p := range dbPaths {
			l, err := dbload.Open(p, dbload.Auto)
			if err != nil {
				fmt.Fprintln(os.Stderr, "geosnap:", err)
				os.Exit(1)
			}
			// The mapping (if any) stays open until the process exits; the
			// write below only reads from it.
			dbs = append(dbs, l.DB)
		}
	}

	// A single input may target a file path directly; everything else
	// writes <out>/<name>.rgsnap per database.
	singleFile := len(dbs) == 1 && strings.HasSuffix(*out, snapshot.Ext)
	if !singleFile {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "geosnap:", err)
			os.Exit(1)
		}
	}
	for _, db := range dbs {
		path := *out
		if !singleFile {
			path = filepath.Join(*out, strings.ToLower(db.Name())+snapshot.Ext)
		}
		m := meta
		if m.SourceFormat == "" {
			m.SourceFormat = db.Meta().SourceFormat
		}
		if err := snapshot.WriteFile(path, db, m); err != nil {
			fmt.Fprintln(os.Stderr, "geosnap:", err)
			os.Exit(1)
		}
		si, err := snapshot.Inspect(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geosnap:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: generation %s, %d ranges, %d records, %d bytes\n",
			path, si.Generation, si.Ranges, si.Records, si.Size)
	}
}

// infoMain prints the identity block of each snapshot — the same fields
// /v2/databases reports for a served generation.
func infoMain(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: geosnap -info file.rgsnap [file...]")
		return 2
	}
	exit := 0
	for _, p := range paths {
		si, err := snapshot.Inspect(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geosnap: %s: %v\n", p, err)
			exit = 1
			continue
		}
		fmt.Printf("%s\n", p)
		fmt.Printf("  name:          %s\n", si.Name)
		fmt.Printf("  generation:    %s\n", si.Generation)
		fmt.Printf("  checksum:      %016x\n", si.Checksum)
		fmt.Printf("  build epoch:   %d (%s)\n", si.BuildEpoch,
			time.Unix(si.BuildEpoch, 0).UTC().Format(time.RFC3339))
		fmt.Printf("  source format: %s\n", si.SourceFormat)
		fmt.Printf("  ranges:        %d\n", si.Ranges)
		fmt.Printf("  records:       %d\n", si.Records)
		fmt.Printf("  size:          %d bytes\n", si.Size)
	}
	return exit
}
