package main

import "testing"

// TestBuildEpochTriState pins the -epoch flag's tri-state semantics:
// unset means a deterministic seed-derived epoch (never wall-clock
// "now"), and an explicit value — zero included — is honored verbatim.
// The old behavior treated 0 as "now", which made the default publish
// non-reproducible and a literal epoch 0 unrepresentable.
func TestBuildEpochTriState(t *testing.T) {
	cases := []struct {
		seed, epoch int64
		set         bool
		want        int64
	}{
		{seed: 1, epoch: 0, set: false, want: epochBase + 1},
		{seed: 42, epoch: 0, set: false, want: epochBase + 42},
		{seed: 1, epoch: 0, set: true, want: 0},
		{seed: 1, epoch: 1234, set: true, want: 1234},
		{seed: 99, epoch: -5, set: true, want: -5},
	}
	for _, tc := range cases {
		if got := buildEpochFor(tc.seed, tc.epoch, tc.set); got != tc.want {
			t.Errorf("buildEpochFor(%d, %d, %v) = %d, want %d",
				tc.seed, tc.epoch, tc.set, got, tc.want)
		}
	}
	// The default epoch is a pure function of the seed: two unset-flag
	// builds of the same world republish under the same epoch.
	if buildEpochFor(7, 0, false) != buildEpochFor(7, 0, false) {
		t.Error("seed-derived default epoch not deterministic")
	}
	if buildEpochFor(7, 0, false) == buildEpochFor(8, 0, false) {
		t.Error("different seeds should not collide on the default epoch")
	}
}
