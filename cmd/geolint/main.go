// Command geolint runs this repository's project-specific static
// analyzers over the tree. It is the mechanical keeper of the engine's
// invariants — determinism, ordered output, context threading, the
// import DAG, the dependency-free policy and slog conventions — and the
// `make lint` step of the pre-PR gate.
//
// Usage:
//
//	geolint [-json] [-rule name[,name...]] [-diff ref] [-list] [patterns...]
//
// Patterns default to ./cmd/... and ./internal/... relative to the
// module root (found by walking up from the working directory).
// -diff ref restricts the REPORTED findings to files changed since the
// git ref (committed, staged or untracked); analyzers still run over
// whole packages so cross-file facts stay sound. Outside a git
// repository -diff degrades to a full run with a warning. Exit
// status is 0 when clean, 1 when there are findings, 2 on usage or
// load errors. Suppress an individual finding with
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"routergeo/internal/lint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array")
		ruleSel  = flag.String("rule", "", "comma-separated rule names to run (default: all)")
		diffRef  = flag.String("diff", "", "report only findings in files changed since this git ref")
		listOnly = flag.Bool("list", false, "list available rules and exit")
	)
	flag.Parse()

	analyzers := lint.All()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *ruleSel != "" {
		sel, bad, ok := lint.ByName(strings.Split(*ruleSel, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "geolint: unknown rule %q (use -list)\n", bad)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./cmd/...", "./internal/..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs, loader.Fset, analyzers)
	if *diffRef != "" {
		changed, err := lint.ChangedSince(loader.Root, *diffRef)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geolint: -diff %s unavailable (%v); running over the full tree\n", *diffRef, err)
		} else {
			findings = lint.FilterByFile(findings, changed)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "geolint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "geolint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}
