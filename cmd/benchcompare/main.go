// Command benchcompare diffs two `go test -bench` outputs (as teed into
// BENCH_core.json by make bench) and fails when any benchmark regressed
// past a threshold. It is the gate behind make bench-compare.
//
// Usage:
//
//	benchcompare -old BENCH_core.json -new BENCH_core.new.json [-threshold 1.30] [-alloc-threshold 1.10]
//
// Benchmarks are matched by name with the -GOMAXPROCS suffix stripped,
// so runs from machines with different core counts still compare. A
// ratio (new ns/op ÷ old ns/op) above the threshold is a regression;
// benchmarks present in only one file are reported but never fail the
// gate, since adding or retiring a benchmark is not a slowdown.
//
// -alloc-threshold arms a second gate over the -benchmem metrics: when
// a benchmark carries B/op and allocs/op in both files, a ratio past
// the threshold — or a previously allocation-free benchmark starting
// to allocate — is a regression. Memory stats present in only one
// file are noted but never gate, mirroring the benchmark-set rule.
//
// Malformed inputs fail loudly instead of silently passing the gate: a
// Benchmark line without a parseable ns/op value, two results mapping
// to the same name (a -cpu list or -count>1 run), and a file with no
// benchmark results at all are each hard errors with file:line context.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
	line        int
}

// normalizeName strips the trailing -GOMAXPROCS suffix go test appends
// to benchmark names.
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench reads every "Benchmark..." line of a bench output stream.
// src names the input in errors.
func parseBench(r io.Reader, src string) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := normalizeName(fields[0])
		var r result
		r.line = lineNo
		ok := false
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp, ok = v, true
			case "B/op":
				r.bytesPerOp, r.hasMem = v, true
			case "allocs/op":
				r.allocsPerOp = v
			}
		}
		if !ok {
			return nil, fmt.Errorf("%s:%d: malformed benchmark line %q: no parseable ns/op value", src, lineNo, fields[0])
		}
		if prev, dup := out[name]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate benchmark %q (first at line %d): runs with a -cpu list or -count>1 are ambiguous, re-run with one CPU count and -count=1", src, lineNo, name, prev.line)
		}
		out[name] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", src, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found; the bench run likely failed before producing output", src)
	}
	return out, nil
}

// parseFile opens and parses one bench output file.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f, path)
}

// compare prints the old/new table to w and returns the regressions
// past threshold. Benchmarks present in only one input are reported in
// the table ("gone" / added count) but are never regressions.
//
// allocThreshold > 0 additionally gates allocs/op and B/op for
// benchmarks carrying memory stats on both sides: a ratio past the
// threshold regresses, and a benchmark that was allocation-free going
// to any allocations at all regresses regardless of ratio (a ratio
// over zero is undefined, and losing a zero-alloc guarantee is exactly
// what the gate exists to catch). Memory stats present on only one
// side are reported but never gate, like benchmarks themselves.
func compare(oldR, newR map[string]result, threshold, allocThreshold float64, w io.Writer) []string {
	names := make([]string, 0, len(oldR))
	for name := range oldR {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range names {
		o := oldR[name]
		n, ok := newR[name]
		if !ok {
			fmt.Fprintf(w, "%-60s %14.1f %14s %8s\n", name, o.nsPerOp, "gone", "-")
			continue
		}
		ratio := 0.0
		if o.nsPerOp > 0 {
			ratio = n.nsPerOp / o.nsPerOp
		}
		mark := ""
		if ratio > threshold {
			mark = "  REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s: %.1f -> %.1f ns/op (%.2fx > %.2fx)",
				name, o.nsPerOp, n.nsPerOp, ratio, threshold))
		}
		fmt.Fprintf(w, "%-60s %14.1f %14.1f %7.2fx%s\n", name, o.nsPerOp, n.nsPerOp, ratio, mark)
		switch {
		case o.hasMem && n.hasMem:
			if n.allocsPerOp > o.allocsPerOp {
				fmt.Fprintf(w, "%-60s %14s allocs/op %.0f -> %.0f\n", "  ^ note:", "", o.allocsPerOp, n.allocsPerOp)
			}
			if allocThreshold > 0 {
				regressions = append(regressions, memRegressions(name, o, n, allocThreshold)...)
			}
		case o.hasMem != n.hasMem && allocThreshold > 0:
			side := "old"
			if n.hasMem {
				side = "new"
			}
			fmt.Fprintf(w, "%-60s %14s memory stats only in the %s run\n", "  ^ note:", "", side)
		}
	}
	added := 0
	for name := range newR {
		if _, ok := oldR[name]; !ok {
			added++
		}
	}
	if added > 0 {
		fmt.Fprintf(w, "(%d benchmark(s) only in the new run)\n", added)
	}
	return regressions
}

// memRegressions gates allocs/op and B/op for one benchmark whose old
// and new results both carry memory stats.
func memRegressions(name string, o, n result, allocThreshold float64) []string {
	var out []string
	gate := func(metric string, ov, nv float64) {
		switch {
		case ov == 0 && nv > 0:
			out = append(out, fmt.Sprintf("%s: %s 0 -> %.0f (was allocation-free)", name, metric, nv))
		case ov > 0 && nv/ov > allocThreshold:
			out = append(out, fmt.Sprintf("%s: %.0f -> %.0f %s (%.2fx > %.2fx)",
				name, ov, nv, metric, nv/ov, allocThreshold))
		}
	}
	gate("allocs/op", o.allocsPerOp, n.allocsPerOp)
	gate("B/op", o.bytesPerOp, n.bytesPerOp)
	return out
}

func main() {
	var (
		oldPath   = flag.String("old", "BENCH_core.json", "baseline bench output")
		newPath   = flag.String("new", "", "fresh bench output to compare")
		threshold = flag.Float64("threshold", 1.30, "fail when new/old ns/op exceeds this ratio")
		allocThr  = flag.Float64("alloc-threshold", 0, "also fail when new/old allocs/op or B/op exceeds this ratio, or a zero-alloc benchmark starts allocating (0 disables the memory gate)")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -new is required")
		os.Exit(2)
	}
	oldR, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	newR, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}

	regressions := compare(oldR, newR, *threshold, *allocThr, os.Stdout)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcompare: %d regression(s) past %.2fx:\n", len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("benchcompare: no regressions")
}
