package main

import (
	"strings"
	"testing"
)

const goodOld = `goos: linux
goarch: amd64
pkg: routergeo/internal/core
BenchmarkCoverage-8        	    1000	    100.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkAccuracy-8        	    2000	    200.0 ns/op
BenchmarkRetired-8         	    1000	     50.0 ns/op
PASS
`

const goodNew = `BenchmarkCoverage-16       	    1000	    120.0 ns/op	      16 B/op	       4 allocs/op
BenchmarkAccuracy-16       	    2000	    900.0 ns/op
BenchmarkBrandNew-16       	    5000	     10.0 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	r, err := parseBench(strings.NewReader(goodOld), "old")
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(r) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(r), r)
	}
	cov := r["BenchmarkCoverage"]
	if cov.nsPerOp != 100 || !cov.hasMem || cov.bytesPerOp != 16 || cov.allocsPerOp != 2 {
		t.Fatalf("BenchmarkCoverage parsed wrong: %+v", cov)
	}
	if acc := r["BenchmarkAccuracy"]; acc.nsPerOp != 200 || acc.hasMem {
		t.Fatalf("BenchmarkAccuracy parsed wrong: %+v", acc)
	}
}

func TestParseBenchMalformedLine(t *testing.T) {
	in := "BenchmarkCoverage-8 1000 100.0 ns/op\nBenchmarkBroken-8\t--- FAIL\n"
	_, err := parseBench(strings.NewReader(in), "old")
	if err == nil {
		t.Fatal("want error for a Benchmark line without ns/op, got nil")
	}
	for _, frag := range []string{"old:2", "BenchmarkBroken", "ns/op"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func TestParseBenchDuplicateAcrossCPUCounts(t *testing.T) {
	in := "BenchmarkCoverage-2 1000 100.0 ns/op\nBenchmarkCoverage-8 1000 90.0 ns/op\n"
	_, err := parseBench(strings.NewReader(in), "new")
	if err == nil {
		t.Fatal("want error for duplicate names after -cpu normalization, got nil")
	}
	for _, frag := range []string{"new:2", "duplicate", "BenchmarkCoverage", "line 1"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func TestParseBenchEmptyInput(t *testing.T) {
	for _, in := range []string{"", "goos: linux\nPASS\n"} {
		if _, err := parseBench(strings.NewReader(in), "empty"); err == nil {
			t.Errorf("want error for input %q with no benchmark results, got nil", in)
		} else if !strings.Contains(err.Error(), "no benchmark results") {
			t.Errorf("error %q should say no benchmark results", err)
		}
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	oldR, err := parseBench(strings.NewReader(goodOld), "old")
	if err != nil {
		t.Fatal(err)
	}
	newR, err := parseBench(strings.NewReader(goodNew), "new")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	regs := compare(oldR, newR, 1.30, 0, &out)

	// Accuracy went 200 -> 900 (4.5x): regression. Coverage went
	// 100 -> 120 (1.2x): under threshold. Retired/BrandNew exist on one
	// side only: reported, never regressions.
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkAccuracy") {
		t.Fatalf("regressions = %v, want exactly BenchmarkAccuracy", regs)
	}
	report := out.String()
	for _, frag := range []string{"gone", "1 benchmark(s) only in the new run", "REGRESSED", "allocs/op 2 -> 4"} {
		if !strings.Contains(report, frag) {
			t.Errorf("report missing %q:\n%s", frag, report)
		}
	}
	if strings.Contains(report, "BenchmarkCoverage-") {
		t.Errorf("names not normalized in report:\n%s", report)
	}
}

func TestCompareHandlesDisjointSets(t *testing.T) {
	oldR := map[string]result{"BenchmarkOnlyOld": {nsPerOp: 10}}
	newR := map[string]result{"BenchmarkOnlyNew": {nsPerOp: 10}}
	var out strings.Builder
	if regs := compare(oldR, newR, 1.30, 1.10, &out); len(regs) != 0 {
		t.Fatalf("disjoint benchmark sets must not regress the gate: %v", regs)
	}
}

func TestCompareAllocGate(t *testing.T) {
	oldR := map[string]result{
		"BenchmarkAllocs":   {nsPerOp: 100, bytesPerOp: 100, allocsPerOp: 10, hasMem: true},
		"BenchmarkBytes":    {nsPerOp: 100, bytesPerOp: 100, allocsPerOp: 10, hasMem: true},
		"BenchmarkZero":     {nsPerOp: 100, bytesPerOp: 0, allocsPerOp: 0, hasMem: true},
		"BenchmarkSteady":   {nsPerOp: 100, bytesPerOp: 64, allocsPerOp: 4, hasMem: true},
		"BenchmarkOneSided": {nsPerOp: 100, bytesPerOp: 999, allocsPerOp: 99, hasMem: true},
	}
	newR := map[string]result{
		"BenchmarkAllocs":   {nsPerOp: 100, bytesPerOp: 100, allocsPerOp: 20, hasMem: true},
		"BenchmarkBytes":    {nsPerOp: 100, bytesPerOp: 300, allocsPerOp: 10, hasMem: true},
		"BenchmarkZero":     {nsPerOp: 100, bytesPerOp: 16, allocsPerOp: 1, hasMem: true},
		"BenchmarkSteady":   {nsPerOp: 100, bytesPerOp: 68, allocsPerOp: 4, hasMem: true},
		"BenchmarkOneSided": {nsPerOp: 100},
	}

	// Memory gate off: nothing regresses no matter how the allocs move.
	var off strings.Builder
	if regs := compare(oldR, newR, 1.30, 0, &off); len(regs) != 0 {
		t.Fatalf("with -alloc-threshold 0 the memory gate must stay off: %v", regs)
	}

	var out strings.Builder
	regs := compare(oldR, newR, 1.30, 1.10, &out)
	joined := strings.Join(regs, "\n")
	// Allocs 10 -> 20 (2x) and bytes 100 -> 300 (3x) regress; the
	// zero-alloc benchmark starting to allocate regresses on both
	// metrics regardless of ratio; 64 -> 68 B/op (1.06x) passes; the
	// benchmark that lost its memory stats is noted, never gated.
	for _, frag := range []string{
		"BenchmarkAllocs: 10 -> 20 allocs/op",
		"BenchmarkBytes: 100 -> 300 B/op",
		"BenchmarkZero: allocs/op 0 -> 1 (was allocation-free)",
		"BenchmarkZero: B/op 0 -> 16 (was allocation-free)",
	} {
		if !strings.Contains(joined, frag) {
			t.Errorf("regressions missing %q:\n%s", frag, joined)
		}
	}
	if len(regs) != 4 {
		t.Errorf("got %d regressions, want 4:\n%s", len(regs), joined)
	}
	for _, name := range []string{"BenchmarkSteady", "BenchmarkOneSided"} {
		if strings.Contains(joined, name) {
			t.Errorf("%s must not regress:\n%s", name, joined)
		}
	}
	if !strings.Contains(out.String(), "memory stats only in the old run") {
		t.Errorf("report should note the one-sided memory stats:\n%s", out.String())
	}
}
