// Command geolookup queries exported geolocation databases (.rgdb files
// written by cmd/routergeo -dbdir or Study.ExportDatabases) for one or
// more IPv4 addresses, printing each database's answer side by side —
// a miniature of the pairwise-consistency view the paper builds at scale.
//
// Usage:
//
//	geolookup -db dir_or_file [-db ...] ip [ip...]
//
// Each -db flag names one .rgdb or .csv database file, or a directory
// containing several.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbcsv"
	"routergeo/internal/geodb/dbfile"
	"routergeo/internal/ipx"
)

type dbList []string

func (d *dbList) String() string     { return strings.Join(*d, ",") }
func (d *dbList) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var dbPaths dbList
	flag.Var(&dbPaths, "db", "path to a .rgdb file or a directory of them (repeatable)")
	flag.Parse()

	if len(dbPaths) == 0 || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: geolookup -db dir_or_file [-db ...] ip [ip...]")
		os.Exit(2)
	}

	var dbs []*geodb.DB
	for _, p := range dbPaths {
		loaded, err := loadPath(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geolookup:", err)
			os.Exit(1)
		}
		dbs = append(dbs, loaded...)
	}
	if len(dbs) == 0 {
		fmt.Fprintln(os.Stderr, "geolookup: no databases loaded")
		os.Exit(1)
	}

	exit := 0
	for _, arg := range flag.Args() {
		addr, err := ipx.ParseAddr(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geolookup: %v\n", err)
			exit = 1
			continue
		}
		fmt.Printf("%s\n", addr)
		for _, db := range dbs {
			rec, ok := db.Lookup(addr)
			switch {
			case !ok:
				fmt.Printf("  %-18s no record\n", db.Name())
			case rec.HasCity():
				fmt.Printf("  %-18s %s / %s (%.4f,%.4f) [/%d record]\n",
					db.Name(), rec.Country, rec.City, rec.Coord.Lat, rec.Coord.Lon, rec.BlockBits)
			case rec.HasCountry():
				fmt.Printf("  %-18s %s (country only) [/%d record]\n",
					db.Name(), rec.Country, rec.BlockBits)
			default:
				fmt.Printf("  %-18s empty record\n", db.Name())
			}
		}
	}
	os.Exit(exit)
}

// loadPath loads one .rgdb file, or every *.rgdb file in a directory.
func loadPath(p string) ([]*geodb.DB, error) {
	info, err := os.Stat(p)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		db, err := loadFile(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		return []*geodb.DB{db}, nil
	}
	var out []*geodb.DB
	for _, pattern := range []string{"*.rgdb", "*.csv"} {
		matches, err := filepath.Glob(filepath.Join(p, pattern))
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			db, err := loadFile(m)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m, err)
			}
			out = append(out, db)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no .rgdb or .csv files", p)
	}
	return out, nil
}

// loadFile dispatches on extension: the binary format self-describes its
// name; CSV databases are named after their file.
func loadFile(p string) (*geodb.DB, error) {
	if strings.HasSuffix(p, ".csv") {
		name := strings.TrimSuffix(filepath.Base(p), ".csv")
		return dbcsv.ReadFile(p, name)
	}
	return dbfile.ReadFile(p)
}
