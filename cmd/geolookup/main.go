// Command geolookup queries geolocation databases for one or more IPv4
// addresses, printing each database's answer side by side — a miniature
// of the pairwise-consistency view the paper builds at scale.
//
// Local mode reads exported database files (written by cmd/routergeo
// -dbdir, cmd/geosnap or Study.ExportDatabases); remote mode queries a
// running geoserve instance through the batch /v2/lookup endpoint.
//
// Usage:
//
//	geolookup -db dir_or_file [-db ...] [-format F] ip [ip...]  # local files
//	geolookup -server http://host:8080 [-rdb N] [ip...]         # remote /v2
//
// Each -db flag names one database file (.rgdb, .csv or .rgsnap), or a
// directory containing several. Formats are sniffed by magic bytes, not
// extension; -format {csv,dbfile,snap} instead asserts a single-file
// format and fails loudly on a mismatch. In remote mode, addresses
// missing from the command line are read from stdin (one per line), so
// a whole Ark-style address file pipes through one batched request
// stream:
//
//	geolookup -server http://host:8080 < addrs.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbload"
	"routergeo/internal/geodb/httpapi"
	"routergeo/internal/ipx"
	"routergeo/internal/obs"
)

type dbList []string

func (d *dbList) String() string     { return strings.Join(*d, ",") }
func (d *dbList) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var (
		server    = flag.String("server", "", "geoserve base URL; queries /v2/lookup instead of local files")
		remoteDB  = flag.String("rdb", "", "with -server: restrict lookups to one database name")
		debugAddr = flag.String("debug-addr", "", "optional debug listener serving pprof, /metrics and the /v2/events stream")
		format    = dbload.Auto
		dbPaths   dbList
	)
	lf := obs.AddLogFlags(flag.CommandLine)
	flag.Var(&dbPaths, "db", "path to a database file or a directory of them (repeatable)")
	flag.Var(&format, "format", "assert the file format: csv, dbfile or snap (default: sniff magic bytes)")
	flag.Parse()

	// Setup installs the slog default the client's retry warnings go to.
	if _, err := lf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "geolookup:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, nil, obs.Events(), nil)
	}

	if *server != "" {
		os.Exit(remoteMain(*server, *remoteDB, flag.Args()))
	}

	if len(dbPaths) == 0 || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: geolookup -db dir_or_file [-db ...] [-format F] ip [ip...]")
		fmt.Fprintln(os.Stderr, "       geolookup -server URL [-rdb name] [ip...] (< addrs.txt)")
		os.Exit(2)
	}

	var dbs []*geodb.DB
	for _, p := range dbPaths {
		loaded, err := loadPath(p, format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geolookup:", err)
			os.Exit(1)
		}
		dbs = append(dbs, loaded...)
	}
	if len(dbs) == 0 {
		fmt.Fprintln(os.Stderr, "geolookup: no databases loaded")
		os.Exit(1)
	}

	exit := 0
	for _, arg := range flag.Args() {
		addr, err := ipx.ParseAddr(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geolookup: %v\n", err)
			exit = 1
			continue
		}
		fmt.Printf("%s\n", addr)
		for _, db := range dbs {
			rec, ok := db.Lookup(addr)
			printAnswer(db.Name(), toRecordJSON(rec, ok))
		}
	}
	os.Exit(exit)
}

// remoteMain is the -server path: batch the addresses (command line,
// else stdin) through POST /v2/lookup and print the same side-by-side
// view the local mode produces.
func remoteMain(baseURL, db string, args []string) int {
	ips := args
	if len(ips) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			ips = append(ips, line)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "geolookup: stdin:", err)
			return 1
		}
	}
	if len(ips) == 0 {
		fmt.Fprintln(os.Stderr, "geolookup: no addresses (pass as arguments or on stdin)")
		return 2
	}

	c := httpapi.NewClient(baseURL, httpapi.WithDatabase(db))
	entries, err := c.BatchLookup(context.Background(), ips)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolookup:", err)
		return 1
	}
	exit := 0
	for _, e := range entries {
		fmt.Printf("%s\n", e.IP)
		if e.Error != "" {
			fmt.Printf("  %-18s %s\n", "error:", e.Error)
			exit = 1
			continue
		}
		names := make([]string, 0, len(e.Results))
		for name := range e.Results {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			printAnswer(name, e.Results[name])
		}
	}
	return exit
}

// toRecordJSON puts a local answer into the wire form so local and
// remote answers print through one code path.
func toRecordJSON(rec geodb.Record, ok bool) httpapi.RecordJSON {
	if !ok {
		return httpapi.RecordJSON{Resolution: "none"}
	}
	return httpapi.RecordJSON{
		Country:    rec.Country,
		City:       rec.City,
		Lat:        rec.Coord.Lat,
		Lon:        rec.Coord.Lon,
		Resolution: rec.Resolution.String(),
		BlockBits:  rec.BlockBits,
		Found:      true,
	}
}

func printAnswer(name string, r httpapi.RecordJSON) {
	switch {
	case !r.Found:
		fmt.Printf("  %-18s no record\n", name)
	case r.Resolution == "city" && r.City != "" && (r.Lat != 0 || r.Lon != 0):
		fmt.Printf("  %-18s %s / %s (%.4f,%.4f) [/%d record]\n",
			name, r.Country, r.City, r.Lat, r.Lon, r.BlockBits)
	case r.Country != "":
		fmt.Printf("  %-18s %s (country only) [/%d record]\n",
			name, r.Country, r.BlockBits)
	default:
		fmt.Printf("  %-18s empty record\n", name)
	}
}

// loadPath loads one database file in any supported format (sniffed by
// magic bytes, or asserted by -format), or every database artifact in a
// directory. Snapshot mappings stay open for the process lifetime: a
// one-shot CLI never retires a generation.
func loadPath(p string, format dbload.Format) ([]*geodb.DB, error) {
	info, err := os.Stat(p)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		l, err := dbload.Open(p, format)
		if err != nil {
			return nil, err
		}
		return []*geodb.DB{l.DB}, nil
	}
	loaded, err := dbload.OpenDir(p)
	if err != nil {
		return nil, err
	}
	out := make([]*geodb.DB, 0, len(loaded))
	for _, l := range loaded {
		out = append(out, l.DB)
	}
	return out, nil
}
