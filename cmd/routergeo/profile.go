package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles arms the -cpuprofile and -memprofile flags. The
// returned stop function is idempotent and must run before every
// process exit — main exits through os.Exit on several paths, which
// skips defers — stopping the CPU profile and writing the heap profile
// so even a failed sweep leaves usable pprof files behind.
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			_ = cpuF.Close()
			return nil, err
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "routergeo: cpu profile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote cpu profile to %s\n", cpu)
			}
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routergeo: heap profile:", err)
			return
		}
		// An up-to-date profile needs a full GC so recently freed memory
		// does not show as live.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "routergeo: heap profile:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "routergeo: heap profile:", err)
		} else {
			fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", mem)
		}
	}, nil
}
