// Command routergeo runs the full reproduction of "A Look at Router
// Geolocation in Public and Commercial Databases" (IMC 2017): it builds
// the synthetic world, collects the Ark-style topology sweep, deploys the
// Atlas-style probe fleet, constructs both ground-truth datasets, builds
// the four vendor databases, and reproduces every table and figure of the
// paper's evaluation.
//
// Usage:
//
//	routergeo [-seed N] [-ases N] [-list] [-run id[,id...]] [-dbdir DIR]
//
// With no flags it runs every experiment. -list names them; -run selects
// a subset; -dbdir additionally exports the four vendor databases in the
// dbfile binary format for use with cmd/geolookup. Every evaluation run
// writes a JSON run manifest (-manifest, default routergeo-run.json)
// recording the config, the stage tree with per-stage timings and item
// counts, and the headline dataset sizes.
//
// -remote URL scores the accuracy sweep through a running geoserve
// instance instead of in-process databases; outage bookkeeping
// (degraded/tainted lookups, breaker opens) is recorded in the
// manifest's taint section. See remoteAccuracy.
//
// -longitudinal runs the drift sweep instead of the paper artifacts:
// the four vendor databases are rebuilt at each churn horizon (-epochs
// steps of -interval-months months on the world's evolution timeline)
// and scored against ground truth re-grounded at the same horizon, so
// the per-epoch table shows how point-in-time accuracy decays as the
// databases go stale. Output is byte-identical between serial and
// parallel runs and across same-seed re-runs.
//
// -cpuprofile and -memprofile write pprof profiles of the run (CPU over
// the whole run, heap at exit), so `make profile` captures a real sweep
// rather than a microbenchmark. Inspect with `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"routergeo/internal/core"
	"routergeo/internal/experiments"
	"routergeo/internal/geodb/dbfile"
	"routergeo/internal/geodb/httpapi"
	"routergeo/internal/obs"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "world seed (changes every random draw downstream)")
		ases      = flag.Int("ases", 0, "number of ASes in the world (0 = default scale)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		run       = flag.String("run", "", "comma-separated experiment IDs to run (default: all paper artifacts)")
		ext       = flag.Bool("ext", false, "also run the extension analyses (or list them with -list)")
		dbdir     = flag.String("dbdir", "", "export the vendor databases to this directory")
		plotdir   = flag.String("plotdir", "", "export figure series as TSV files to this directory")
		stability = flag.Int("stability", 0, "instead of experiments, rebuild the pipeline under N seeds and print headline metrics")
		longit    = flag.Bool("longitudinal", false, "instead of experiments, run the drift sweep: rebuild the vendor databases per epoch and score each against horizon-matched ground truth")
		epochs    = flag.Int("epochs", 3, "epochs in the longitudinal sweep (with -longitudinal)")
		interval  = flag.Float64("interval-months", 4, "months of churn between epochs (with -longitudinal)")
		manifest  = flag.String("manifest", "routergeo-run.json", "write the JSON run manifest here (empty disables)")
		par       = flag.Int("parallelism", 0, "worker count for measurement loops and the experiment fan-out; 1 forces the serial path (0 = GOMAXPROCS)")
		remote    = flag.String("remote", "", "instead of experiments, score the accuracy sweep through a geoserve instance at this base URL")
		remoteFB  = flag.Bool("remote-fallback", true, "with -remote, degrade to the locally built databases when the server cannot answer (false: misses are tainted instead)")
		debugAddr = flag.String("debug-addr", "", "optional debug listener serving pprof, /metrics and the /v2/events stream")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	lf := obs.AddLogFlags(flag.CommandLine)
	flag.Parse()
	core.SetParallelism(*par)

	if _, err := lf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "routergeo:", err)
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routergeo:", err)
		os.Exit(2)
	}
	defer stopProfiles()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		if *ext {
			for _, e := range experiments.Extensions() {
				fmt.Printf("%-12s %s\n", e.ID, e.Title)
			}
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.World.Seed = *seed
	if *ases > 0 {
		cfg.World.ASes = *ases
	}

	rec := obs.NewRun("routergeo")
	rec.SetSeed(*seed)
	if *debugAddr != "" {
		// The sweep's progress ticks, span boundaries and client breaker
		// transitions stream live from this listener's /v2/events.
		obs.ServeDebug(*debugAddr, rec.Registry(), obs.Events(), func(err error) {
			slog.Error("debug listener failed", "error", err)
		})
		slog.Info("debug listener up", "addr", *debugAddr)
	}
	if err := rec.SetConfig(cfg); err != nil {
		slog.Warn("run config not recorded", "error", err)
	}
	ctx := rec.Context(context.Background())
	writeManifest := func() {
		if *manifest == "" {
			return
		}
		if err := rec.WriteManifest(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "routergeo:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "wrote run manifest to %s\n", *manifest)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "routergeo:", err)
		writeManifest()
		stopProfiles() // os.Exit skips the deferred stop
		os.Exit(1)
	}

	if *stability > 0 {
		seeds := make([]int64, *stability)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		if err := experiments.StabilityReport(ctx, os.Stdout, cfg, seeds); err != nil {
			fail(err)
		}
		writeManifest()
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building environment (world seed %d)...\n", *seed)
	env, err := experiments.NewEnv(ctx, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v: %d routers, %d interfaces, %d Ark addresses, %d ground-truth addresses\n",
		time.Since(start).Round(time.Millisecond),
		env.W.NumRouters(), env.W.NumInterfaces(), len(env.ArkAddrs), env.GT.Len())
	rec.SetCount("routers", int64(env.W.NumRouters()))
	rec.SetCount("interfaces", int64(env.W.NumInterfaces()))
	rec.SetCount("ark_addresses", int64(len(env.ArkAddrs)))
	rec.SetCount("ground_truth", int64(env.GT.Len()))
	rec.SetCount("targets", int64(len(env.Targets)))

	if *dbdir != "" {
		if err := os.MkdirAll(*dbdir, 0o755); err != nil {
			fail(err)
		}
		for _, db := range env.DBs {
			path := filepath.Join(*dbdir, strings.ToLower(db.Name())+".rgdb")
			if err := dbfile.WriteFile(path, db); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d ranges)\n", path, db.Len())
		}
	}

	if *plotdir != "" {
		if err := experiments.WritePlotData(ctx, *plotdir, env); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote figure series to %s\n", *plotdir)
	}

	if *longit {
		rec.SetCount("epochs", int64(*epochs))
		if err := experiments.Longitudinal(ctx, os.Stdout, env, *epochs, *interval); err != nil {
			fail(err)
		}
		writeManifest()
		return
	}

	if *remote != "" {
		if err := remoteAccuracy(ctx, rec, env, *remote, *remoteFB); err != nil {
			fail(err)
		}
		writeManifest()
		return
	}

	if *run == "" {
		if err := experiments.RunAll(ctx, os.Stdout, env); err != nil {
			fail(err)
		}
		if *ext {
			for _, e := range experiments.Extensions() {
				fmt.Printf("\n================ %s — %s ================\n", e.ID, e.Title)
				if err := experiments.RunOne(ctx, e, os.Stdout, env); err != nil {
					fail(err)
				}
			}
		}
		writeManifest()
		return
	}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "routergeo: unknown experiment %q (use -list)\n", id)
			stopProfiles()
			os.Exit(1)
		}
		fmt.Printf("\n================ %s — %s ================\n", e.ID, e.Title)
		if err := experiments.RunOne(ctx, e, os.Stdout, env); err != nil {
			fail(err)
		}
	}
	writeManifest()
}

// remoteAccuracy scores the paper's accuracy sweep (§5.2) against a
// geoserve instance instead of in-process databases — the deployment
// shape the commercial products are actually consumed in. Each database
// is evaluated through a RemoteProvider; with fallback armed the locally
// built copy answers whenever the server cannot, so an outage degrades
// throughput instead of corrupting results. Either way the outage
// bookkeeping — transport errors, degraded lookups, tainted (falsely
// missing) lookups, breaker opens — lands in the run manifest, so a
// sweep that survived trouble says so.
func remoteAccuracy(ctx context.Context, rec *obs.Run, env *experiments.Env, baseURL string, fallback bool) error {
	fmt.Printf("remote accuracy sweep via %s (%d targets)\n", baseURL, len(env.Targets))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "db\tcountry cov\tcountry acc\tcity cov\tmedian err\tdegraded\ttainted")
	for _, db := range env.DBs {
		c := httpapi.NewClient(baseURL,
			httpapi.WithDatabase(db.Name()),
			httpapi.WithBaseContext(ctx),
			httpapi.WithClientMetrics(rec.Registry()))
		var opts []httpapi.RemoteOption
		if fallback {
			opts = append(opts, httpapi.WithFallback(db))
		}
		p, err := httpapi.NewRemoteProvider(c, opts...)
		if err != nil {
			return err
		}
		acc := core.MeasureAccuracy(ctx, p, env.Targets)
		med := 0.0
		if acc.ErrorCDF != nil && acc.ErrorCDF.N() > 0 {
			med = acc.ErrorCDF.Quantile(0.5)
		}
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.0f km\t%d\t%d\n",
			db.Name(), 100*acc.CountryCoverage(), 100*acc.CountryAccuracy(),
			100*acc.CityCoverage(), med, p.Degraded(), p.Tainted())
		name := strings.ToLower(db.Name())
		rec.SetTaint("remote."+name+".degraded", p.Degraded())
		rec.SetTaint("remote."+name+".tainted", p.Tainted())
		rec.SetTaint("remote."+name+".transport_errors", c.TransportErrors())
		rec.SetTaint("remote."+name+".breaker_opens", c.BreakerStats().Opens)
		// A mid-sweep server hot reload means the answers may span two
		// database generations — taint the run rather than hide it.
		rec.SetTaint("remote."+name+".generation_flips", p.GenerationFlips())
	}
	return w.Flush()
}
