// Command routergeo runs the full reproduction of "A Look at Router
// Geolocation in Public and Commercial Databases" (IMC 2017): it builds
// the synthetic world, collects the Ark-style topology sweep, deploys the
// Atlas-style probe fleet, constructs both ground-truth datasets, builds
// the four vendor databases, and reproduces every table and figure of the
// paper's evaluation.
//
// Usage:
//
//	routergeo [-seed N] [-ases N] [-list] [-run id[,id...]] [-dbdir DIR]
//
// With no flags it runs every experiment. -list names them; -run selects
// a subset; -dbdir additionally exports the four vendor databases in the
// dbfile binary format for use with cmd/geolookup.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"routergeo/internal/experiments"
	"routergeo/internal/geodb/dbfile"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "world seed (changes every random draw downstream)")
		ases      = flag.Int("ases", 0, "number of ASes in the world (0 = default scale)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		run       = flag.String("run", "", "comma-separated experiment IDs to run (default: all paper artifacts)")
		ext       = flag.Bool("ext", false, "also run the extension analyses (or list them with -list)")
		dbdir     = flag.String("dbdir", "", "export the vendor databases to this directory")
		plotdir   = flag.String("plotdir", "", "export figure series as TSV files to this directory")
		stability = flag.Int("stability", 0, "instead of experiments, rebuild the pipeline under N seeds and print headline metrics")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		if *ext {
			for _, e := range experiments.Extensions() {
				fmt.Printf("%-12s %s\n", e.ID, e.Title)
			}
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.World.Seed = *seed
	if *ases > 0 {
		cfg.World.ASes = *ases
	}

	if *stability > 0 {
		seeds := make([]int64, *stability)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		if err := experiments.StabilityReport(os.Stdout, cfg, seeds); err != nil {
			fmt.Fprintln(os.Stderr, "routergeo:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building environment (world seed %d)...\n", *seed)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routergeo:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v: %d routers, %d interfaces, %d Ark addresses, %d ground-truth addresses\n",
		time.Since(start).Round(time.Millisecond),
		env.W.NumRouters(), env.W.NumInterfaces(), len(env.ArkAddrs), env.GT.Len())

	if *dbdir != "" {
		if err := os.MkdirAll(*dbdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "routergeo:", err)
			os.Exit(1)
		}
		for _, db := range env.DBs {
			path := filepath.Join(*dbdir, strings.ToLower(db.Name())+".rgdb")
			if err := dbfile.WriteFile(path, db); err != nil {
				fmt.Fprintln(os.Stderr, "routergeo:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d ranges)\n", path, db.Len())
		}
	}

	if *plotdir != "" {
		if err := experiments.WritePlotData(*plotdir, env); err != nil {
			fmt.Fprintln(os.Stderr, "routergeo:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote figure series to %s\n", *plotdir)
	}

	if *run == "" {
		if err := experiments.RunAll(os.Stdout, env); err != nil {
			fmt.Fprintln(os.Stderr, "routergeo:", err)
			os.Exit(1)
		}
		if *ext {
			for _, e := range experiments.Extensions() {
				fmt.Printf("\n================ %s — %s ================\n", e.ID, e.Title)
				if err := e.Run(os.Stdout, env); err != nil {
					fmt.Fprintln(os.Stderr, "routergeo:", err)
					os.Exit(1)
				}
			}
		}
		return
	}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "routergeo: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		fmt.Printf("\n================ %s — %s ================\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, env); err != nil {
			fmt.Fprintln(os.Stderr, "routergeo:", err)
			os.Exit(1)
		}
	}
}
