// Command geoserve exposes geolocation databases over HTTP, the way the
// commercial products are consumed in production. It serves either
// exported .rgdb files or the four simulated databases of a freshly
// built study.
//
// Usage:
//
//	geoserve [-addr :8080] [-db dir_or_file]...   # serve exported files
//	geoserve [-addr :8080] -build [-seed N]       # build a study and serve it
//
// Endpoints: GET /v1/databases, GET /v1/lookup?ip=A[&db=N], GET /healthz.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"routergeo/internal/experiments"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbfile"
	"routergeo/internal/geodb/httpapi"
)

type dbList []string

func (d *dbList) String() string     { return strings.Join(*d, ",") }
func (d *dbList) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		build   = flag.Bool("build", false, "build a study and serve its four databases")
		seed    = flag.Int64("seed", 1, "world seed (with -build)")
		dbPaths dbList
	)
	flag.Var(&dbPaths, "db", "path to a .rgdb file or a directory of them (repeatable)")
	flag.Parse()

	var dbs []*geodb.DB
	switch {
	case *build:
		cfg := experiments.DefaultConfig()
		cfg.World.Seed = *seed
		fmt.Fprintln(os.Stderr, "building study...")
		start := time.Now()
		env, err := experiments.NewEnv(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geoserve:", err)
			os.Exit(1)
		}
		dbs = env.DBs
		fmt.Fprintf(os.Stderr, "built in %v\n", time.Since(start).Round(time.Millisecond))
	case len(dbPaths) > 0:
		for _, p := range dbPaths {
			loaded, err := load(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "geoserve:", err)
				os.Exit(1)
			}
			dbs = append(dbs, loaded...)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: geoserve [-addr A] (-build | -db path...)")
		os.Exit(2)
	}

	for _, db := range dbs {
		fmt.Fprintf(os.Stderr, "serving %s (%d ranges)\n", db.Name(), db.Len())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewHandler(dbs),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "listening on http://%s\n", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "geoserve:", err)
		os.Exit(1)
	}
}

func load(p string) ([]*geodb.DB, error) {
	info, err := os.Stat(p)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		db, err := dbfile.ReadFile(p)
		if err != nil {
			return nil, err
		}
		return []*geodb.DB{db}, nil
	}
	matches, err := filepath.Glob(filepath.Join(p, "*.rgdb"))
	if err != nil {
		return nil, err
	}
	var out []*geodb.DB
	for _, m := range matches {
		db, err := dbfile.ReadFile(m)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		out = append(out, db)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no .rgdb files", p)
	}
	return out, nil
}
