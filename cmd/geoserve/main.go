// Command geoserve exposes geolocation databases over HTTP, the way the
// commercial products are consumed in production. It serves exported
// database files (any format, sniffed by magic bytes), the four
// simulated databases of a freshly built study, or — for zero-downtime
// operation — a directory of .rgsnap snapshots it hot-reloads from.
//
// Usage:
//
//	geoserve [-addr :8080] [-db dir_or_file]...       # serve exported files
//	geoserve [-addr :8080] -build [-seed N]           # build a study and serve it
//	geoserve [-addr :8080] -snap-dir dir [-admin]     # serve snapshots, hot-reload on change
//
// Endpoints: GET /v1/databases, GET /v1/lookup?ip=A[&db=N] (stable),
// POST /v2/lookup (batch), GET /v2/databases, GET /v2/stats,
// POST /v2/admin/reload (with -admin), GET /healthz (which reports
// "draining" once shutdown starts), GET /metrics (Prometheus text
// exposition; Accept: application/json selects the raw registry
// snapshot), and GET /v2/events (the live event stream as SSE:
// generation swaps, reload outcomes, chaos injections).
//
// With -snap-dir the serving set is a generation: the directory is
// polled every -reload-interval, and when a publisher renames new
// snapshots into place the whole new generation is loaded beside the
// old, validated, and swapped in atomically — in-flight requests finish
// on the generation they started with, and zero requests drop. A bad
// publish (corrupt or truncated snapshot) is logged, counted in
// reload.failures, and leaves the serving generation untouched. -admin
// arms POST /v2/admin/reload to trigger a rescan on demand (?force=1
// re-loads even when the directory looks unchanged; a rescan already in
// flight answers 409).
//
// -archive N keeps the last N retired generations alive after a swap so
// GET /v2/lookup?asof=<unix> can time-travel: the newest generation
// whose build epoch is at or before asof answers (its id in
// X-Geodb-Generation), and an asof older than everything retained is a
// 404 with a sentinel error body. /v2/stats reports the archive depth
// and horizon.
//
// SIGINT/SIGTERM trigger a graceful shutdown: /healthz flips to
// draining, in-flight requests get -drain to finish, then the listener
// closes.
//
// -chaos <policy> arms deterministic fault injection over every lookup
// endpoint (health and stats stay exempt so the server remains
// observable while it misbehaves): latency spikes, 5xx bursts,
// throttles, connection resets, truncated bodies and slow-loris
// responses, per internal/faults. Policies are named (latency, errors,
// throttle, resets, truncate, slowloris, mixed) with inline overrides —
// "errors:rate=0.5,seed=7" — and the same spec always injects the same
// schedule, so client resilience tests are reproducible. Injected-fault
// tallies appear in /v2/stats under "chaos".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"routergeo/internal/core"
	"routergeo/internal/experiments"
	"routergeo/internal/faults"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbload"
	"routergeo/internal/geodb/httpapi"
	"routergeo/internal/obs"
)

type dbList []string

func (d *dbList) String() string     { return strings.Join(*d, ",") }
func (d *dbList) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		build       = flag.Bool("build", false, "build a study and serve its four databases")
		seed        = flag.Int64("seed", 1, "world seed (with -build)")
		maxBatch    = flag.Int("max-batch", httpapi.DefaultMaxBatch, "max addresses per /v2/lookup request")
		concurrency = flag.Int("concurrency", 0, "worker-pool width for large batches (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", httpapi.DefaultRequestTimeout, "per-request timeout (0 disables)")
		drain       = flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
		grace       = flag.Duration("grace", time.Second, "delay between /healthz flipping to draining and the listener closing")
		quiet       = flag.Bool("quiet", false, "silence routine access logs (4xx/5xx still log)")
		debugAddr   = flag.String("debug-addr", "", "optional debug listener serving pprof, /debug/metrics, /metrics and the /v2/events stream")
		par         = flag.Int("parallelism", 0, "worker count for measurement loops and the default batch pool width (0 = GOMAXPROCS)")
		chaos       = flag.String("chaos", "", "fault-injection policy, e.g. mixed or errors:rate=0.5,seed=7 (see internal/faults)")
		snapDir     = flag.String("snap-dir", "", "directory of .rgsnap snapshots to serve and hot-reload from")
		reloadEvery = flag.Duration("reload-interval", httpapi.DefaultReloadInterval, "how often -snap-dir is polled for new snapshot generations")
		archive     = flag.Int("archive", 0, "retired generations to keep answering /v2/lookup?asof= time-travel queries (0 disables)")
		admin       = flag.Bool("admin", false, "arm POST /v2/admin/reload (requires -snap-dir)")
		dbPaths     dbList
	)
	lf := obs.AddLogFlags(flag.CommandLine)
	flag.Var(&dbPaths, "db", "path to a .rgdb file or a directory of them (repeatable)")
	flag.Parse()
	core.SetParallelism(*par)
	if *concurrency == 0 && *par > 0 {
		*concurrency = *par
	}

	logger, err := lf.Setup(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geoserve:", err)
		os.Exit(2)
	}

	if *admin && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "geoserve: -admin requires -snap-dir")
		os.Exit(2)
	}

	var dbs []*geodb.DB
	switch {
	case *snapDir != "":
		// The serving set comes from the reloader's first rescan below;
		// the handler starts empty for a moment that nobody observes,
		// since the listener is not up yet.
	case *build:
		cfg := experiments.DefaultConfig()
		cfg.World.Seed = *seed
		fmt.Fprintln(os.Stderr, "building study...")
		start := time.Now()
		env, err := experiments.NewEnv(context.Background(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geoserve:", err)
			os.Exit(1)
		}
		dbs = env.DBs
		fmt.Fprintf(os.Stderr, "built in %v\n", time.Since(start).Round(time.Millisecond))
	case len(dbPaths) > 0:
		for _, p := range dbPaths {
			loaded, err := load(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "geoserve:", err)
				os.Exit(1)
			}
			dbs = append(dbs, loaded...)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: geoserve [-addr A] (-build | -db path... | -snap-dir dir)")
		os.Exit(2)
	}

	for _, db := range dbs {
		fmt.Fprintf(os.Stderr, "serving %s (%d ranges)\n", db.Name(), db.Len())
	}

	opts := []httpapi.ServerOption{
		httpapi.WithMaxBatch(*maxBatch),
		httpapi.WithRequestTimeout(*timeout),
	}
	if *archive > 0 {
		opts = append(opts, httpapi.WithSnapshotArchive(*archive))
	}
	if *concurrency > 0 {
		opts = append(opts, httpapi.WithServerConcurrency(*concurrency))
	}
	// The access logger is always installed; -quiet raises its floor to
	// Warn so routine 2xx traffic goes silent while 4xx/5xx still log.
	accessLogger := logger
	if *quiet {
		level := lf.MinLevel()
		if level < slog.LevelWarn {
			level = slog.LevelWarn
		}
		accessLogger = obs.NewLogger(os.Stderr, level, lf.Format)
	}
	// The admin hook closes over rel, which needs the handler to exist
	// first; admin requests can only arrive after the listener is up,
	// well past the assignment below.
	var rel *httpapi.Reloader
	if *admin {
		opts = append(opts, httpapi.WithAdminReload(func(force bool) (bool, error) {
			return rel.Rescan(force)
		}))
	}
	opts = append(opts, httpapi.WithLogger(accessLogger))
	handler := httpapi.NewHandler(dbs, opts...)

	if *snapDir != "" {
		rel = httpapi.NewReloader(handler, *snapDir, *reloadEvery, logger)
		// The first generation must load, or there is nothing to serve.
		if _, err := rel.Rescan(true); err != nil {
			fmt.Fprintln(os.Stderr, "geoserve:", err)
			os.Exit(1)
		}
		reloadCtx, stopReload := context.WithCancel(context.Background())
		defer stopReload()
		go rel.Run(reloadCtx)
		fmt.Fprintf(os.Stderr, "hot reload armed: polling %s every %v (generation %s)\n",
			*snapDir, *reloadEvery, handler.Generation())
	}

	// The chaos middleware sits outside the whole handler stack so its
	// faults hit logging, metrics and recovery exactly as real transport
	// trouble would. /healthz, /v2/stats, /metrics and /v2/events stay
	// exempt: an operator watching a chaos run needs clean control and
	// observation channels.
	var root http.Handler = handler
	if *chaos != "" {
		policy, err := faults.Parse(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geoserve:", err)
			os.Exit(2)
		}
		injector := faults.New(policy,
			faults.WithExemptPaths("/healthz", "/v2/stats", "/metrics", "/v2/events"),
			faults.WithObserver(func(k faults.Kind) {
				handler.Registry().Counter("chaos.injected." + string(k)).Inc()
				handler.EventBus().Publish("chaos.inject", "kind", string(k))
			}))
		root = injector.Middleware(handler)
		logger.Warn("chaos fault injection armed", "policy", policy.Name, "seed", policy.Seed)
	}

	if *debugAddr != "" {
		logger.Info("debug listener up", "addr", *debugAddr)
		obs.ServeDebug(*debugAddr, handler.Registry(), handler.EventBus(), func(err error) {
			logger.Error("debug listener failed", "error", err)
		})
	}

	srv := &http.Server{
		Handler:           root,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Listen before serving so the printed address is the actual bound
	// one — with -addr :0 (tests, parallel CI) the kernel picks the port
	// and the "listening on" line is how callers learn it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geoserve:", err)
		os.Exit(1)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "listening on http://%s\n", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// The listener failed before any shutdown was requested.
		fmt.Fprintln(os.Stderr, "geoserve:", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "geoserve: %v: draining for up to %v\n", sig, *drain)
		handler.SetDraining(true)
		// Keep the listener up briefly so load balancers observe the 503
		// draining health answer before connections start being refused.
		time.Sleep(*grace)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "geoserve: drain incomplete:", err)
			os.Exit(1)
		}
		// ListenAndServe returns ErrServerClosed after Shutdown; anything
		// else is a real serve failure.
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "geoserve:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "geoserve: shutdown complete")
	}
}

// load opens a file (any supported format, sniffed by magic bytes) or a
// directory of database artifacts.
func load(p string) ([]*geodb.DB, error) {
	info, err := os.Stat(p)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		l, err := dbload.Open(p, dbload.Auto)
		if err != nil {
			return nil, err
		}
		return []*geodb.DB{l.DB}, nil
	}
	loaded, err := dbload.OpenDir(p)
	if err != nil {
		return nil, err
	}
	var out []*geodb.DB
	for _, l := range loaded {
		// Mappings stay open for the process lifetime; this static mode
		// has no reload, so nothing ever retires them.
		out = append(out, l.DB)
	}
	return out, nil
}
