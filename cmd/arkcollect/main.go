// Command arkcollect runs the Ark-style topology sweep on its own and
// dumps the observed router-interface dataset — the reproduction's
// equivalent of extracting the Ark-topo-router addresses from one week of
// the CAIDA topology dataset (§2.1). It also prints the ITDK-style alias
// summary (interfaces per observed router).
//
// Usage:
//
//	arkcollect [-seed N] [-ases N] [-monitors N] [-cycles N] [-out file]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"routergeo/internal/ark"
	"routergeo/internal/ark/wartslite"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/obs"
	"routergeo/internal/traceroute"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "world seed")
		ases      = flag.Int("ases", 0, "number of ASes (0 = default)")
		monitors  = flag.Int("monitors", 0, "number of monitors (0 = default)")
		cycles    = flag.Int("cycles", 0, "probing cycles (0 = default)")
		out       = flag.String("out", "", "write one observed address per line to this file ('-' = stdout)")
		warts     = flag.String("warts", "", "archive every raw trace to this file in the wartslite container")
		debugAddr = flag.String("debug-addr", "", "optional debug listener serving pprof, /metrics and the /v2/events stream")
	)
	lf := obs.AddLogFlags(flag.CommandLine)
	flag.Parse()

	if _, err := lf.Setup(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "arkcollect:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, nil, obs.Events(), nil)
	}

	wcfg := netsim.DefaultConfig()
	wcfg.Seed = *seed
	if *ases > 0 {
		wcfg.ASes = *ases
	}
	w, err := netsim.Build(wcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arkcollect:", err)
		os.Exit(1)
	}

	acfg := ark.DefaultConfig()
	acfg.Seed = *seed
	if *monitors > 0 {
		acfg.Monitors = *monitors
	}
	if *cycles > 0 {
		acfg.Cycles = *cycles
	}

	// With -warts, buffer every raw trace and write the archive once the
	// sweep finishes (the monitor table is only known after placement).
	var buffered []wartslite.Trace
	if *warts != "" {
		acfg.Sink = func(monitor string, dst ipx.Addr, hops []traceroute.Hop) {
			t := wartslite.Trace{Monitor: monitor, Dst: dst}
			for _, h := range hops {
				if h.Iface < 0 {
					continue
				}
				t.Hops = append(t.Hops, wartslite.Hop{
					Addr:  w.Interfaces[h.Iface].Addr,
					RTTMs: h.RTTMs,
				})
			}
			buffered = append(buffered, t)
		}
	}

	coll := ark.Collect(context.Background(), w, acfg)

	if *warts != "" {
		f, err := os.Create(*warts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arkcollect:", err)
			os.Exit(1)
		}
		names := make([]string, len(coll.Monitors))
		for i, m := range coll.Monitors {
			names[i] = m.Name
		}
		ww, err := wartslite.NewWriter(f, names)
		if err == nil {
			for _, t := range buffered {
				if err = ww.WriteTrace(t); err != nil {
					break
				}
			}
		}
		if err == nil {
			err = ww.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "arkcollect:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "archived %d traces to %s\n", len(buffered), *warts)
	}

	aliases := ark.AliasSets(w, coll)
	fmt.Fprintf(os.Stderr, "world: %d routers, %d interfaces\n", w.NumRouters(), w.NumInterfaces())
	fmt.Fprintf(os.Stderr, "sweep: %d monitors, %d traces\n", len(coll.Monitors), coll.Traces)
	fmt.Fprintf(os.Stderr, "observed: %d interfaces on %d routers (%.2f interfaces/router; the paper's 1,638K/485K = 3.38)\n",
		len(coll.Interfaces), len(aliases), float64(len(coll.Interfaces))/float64(len(aliases)))

	if *out == "" {
		return
	}
	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arkcollect:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	bw := bufio.NewWriter(f)
	for _, id := range coll.Interfaces {
		fmt.Fprintln(bw, w.Interfaces[id].Addr)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "arkcollect:", err)
		os.Exit(1)
	}
}
