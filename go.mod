module routergeo

go 1.22
