package routergeo

import "math/rand"

// newRand centralizes seeded RNG construction for the facade so every
// public entry point stays deterministic for a given seed.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
