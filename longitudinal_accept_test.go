package routergeo

// Acceptance suite for the longitudinal workload: a 3-epoch snapshot
// series published the way geosnap does must be reproducible byte for
// byte, and a server holding the series in its snapshot archive must
// answer /v2/lookup?asof= queries byte-identically to a server loading
// each epoch's snapshots directly. The drift sweep's table must be
// byte-identical between serial and parallel runs and across re-runs of
// the whole pipeline under the same seed.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"routergeo/internal/core"
	"routergeo/internal/experiments"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/httpapi"
	"routergeo/internal/geodb/snapshot"
)

const (
	longitudinalEpochs   = 3
	longitudinalInterval = 4.0 // months between epochs
)

// epochUnix spaces the published build epochs one "month" of 1000
// seconds apart per interval step — arbitrary but monotonic, which is
// all the asof selector keys on.
func epochUnix(k int) int64 { return 10_000 + int64(k)*4_000 }

// publishSeries writes the study's databases as a dated snapshot series
// under root, epoch k rebuilt at k·interval months of churn — the same
// shape `geosnap -build -epochs N -interval-months M` publishes.
func publishSeries(t *testing.T, s *Study, root string) {
	t.Helper()
	ctx := context.Background()
	for k := 0; k < longitudinalEpochs; k++ {
		dbs := s.env.DBs
		if k > 0 {
			var err error
			dbs, err = s.env.BuildDBsAt(ctx, float64(k)*longitudinalInterval)
			if err != nil {
				t.Fatal(err)
			}
		}
		dir := filepath.Join(root, fmt.Sprintf("epoch-%03d", k))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		meta := snapshot.Meta{BuildEpoch: epochUnix(k), SourceFormat: "study"}
		for _, db := range dbs {
			path := filepath.Join(dir, strings.ToLower(db.Name())+snapshot.Ext)
			if err := snapshot.WriteFile(path, db, meta); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// loadEpoch opens one epoch's snapshots (sorted by file name, so the
// serving set is deterministic) and registers their mappings for
// cleanup.
func loadEpoch(t *testing.T, root string, k int) []*geodb.DB {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(root, fmt.Sprintf("epoch-%03d", k), "*"+snapshot.Ext))
	if err != nil || len(paths) == 0 {
		t.Fatalf("epoch %d: paths=%v err=%v", k, paths, err)
	}
	sort.Strings(paths)
	var dbs []*geodb.DB
	for _, p := range paths {
		h, err := snapshot.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = h.Close() })
		dbs = append(dbs, h.DB())
	}
	return dbs
}

func TestLongitudinalSeriesRepublishByteIdentical(t *testing.T) {
	s := testStudy(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	publishSeries(t, s, dirA)
	publishSeries(t, s, dirB)

	pattern := filepath.Join(dirA, "epoch-*", "*"+snapshot.Ext)
	paths, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if want := longitudinalEpochs * len(s.env.DBs); len(paths) != want {
		t.Fatalf("series holds %d snapshots, want %d", len(paths), want)
	}
	for _, pa := range paths {
		rel, err := filepath.Rel(dirA, pa)
		if err != nil {
			t.Fatal(err)
		}
		a, err := os.ReadFile(pa)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: republished series diverges (%d vs %d bytes)", rel, len(a), len(b))
		}
	}
}

func TestLongitudinalAsOfMatchesDirectSnapshotLoads(t *testing.T) {
	s := testStudy(t)
	root := t.TempDir()
	publishSeries(t, s, root)

	// The archive server walks the series the way a long-running
	// geoserve -archive would: epoch 0 first, each later epoch swapped in
	// on top, retirees held in the archive.
	archived := httpapi.NewHandler(loadEpoch(t, root, 0),
		httpapi.WithSnapshotArchive(longitudinalEpochs))
	for k := 1; k < longitudinalEpochs; k++ {
		archived.Swap(loadEpoch(t, root, k))
	}
	archiveSrv := httptest.NewServer(archived)
	defer archiveSrv.Close()

	// The query set: a deterministic slice of Ark router addresses.
	addrs := make([]string, 0, 48)
	for i, a := range s.env.ArkAddrs {
		if i == cap(addrs) {
			break
		}
		addrs = append(addrs, a.String())
	}
	body, err := json.Marshal(httpapi.BatchRequest{IPs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	post := func(url string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get(httpapi.GenerationHeader), payload
	}

	for k := 0; k < longitudinalEpochs; k++ {
		// A second, archive-free server loads epoch k's snapshots directly
		// — the reference the time-travel answer must be byte-identical to.
		direct := httpapi.NewHandler(loadEpoch(t, root, k))
		directSrv := httptest.NewServer(direct)
		status, directGen, want := post(directSrv.URL + "/v2/lookup")
		directSrv.Close()
		if status != http.StatusOK {
			t.Fatalf("epoch %d: direct lookup status %d", k, status)
		}

		// At the exact epoch and at any instant before the next one, the
		// archive answers from epoch k's generation.
		for _, asof := range []int64{epochUnix(k), epochUnix(k) + 1_500} {
			url := fmt.Sprintf("%s/v2/lookup?asof=%d", archiveSrv.URL, asof)
			status, gen, got := post(url)
			if status != http.StatusOK {
				t.Fatalf("epoch %d asof=%d: status %d", k, asof, status)
			}
			if gen != directGen {
				t.Errorf("epoch %d asof=%d: answered by generation %s, direct load is %s",
					k, asof, gen, directGen)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("epoch %d asof=%d: response diverges from the direct snapshot load", k, asof)
			}
		}
	}

	// Before the first epoch the archive horizon answers 404 with the
	// sentinel the client maps to its terminal error.
	status, _, _ := post(fmt.Sprintf("%s/v2/lookup?asof=%d", archiveSrv.URL, epochUnix(0)-1))
	if status != http.StatusNotFound {
		t.Fatalf("pre-horizon asof: status %d, want 404", status)
	}
	c := httpapi.NewClient(archiveSrv.URL, httpapi.WithAsOf(epochUnix(0)-1))
	if _, err := c.BatchLookup(context.Background(), addrs[:1]); !errors.Is(err, httpapi.ErrBeforeArchiveHorizon) {
		t.Fatalf("client pre-horizon err = %v, want ErrBeforeArchiveHorizon", err)
	}

	// A client pinned mid-series gets the matching epoch end to end.
	c = httpapi.NewClient(archiveSrv.URL, httpapi.WithAsOf(epochUnix(1)))
	entries, err := c.BatchLookup(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(addrs) {
		t.Fatalf("asof-pinned client answered %d of %d addresses", len(entries), len(addrs))
	}
}

func TestLongitudinalDriftTableByteIdentical(t *testing.T) {
	s := testStudy(t)
	run := func(env *experiments.Env, par int) []byte {
		t.Helper()
		core.SetParallelism(par)
		defer core.SetParallelism(0)
		var buf bytes.Buffer
		if err := experiments.Longitudinal(context.Background(), &buf, env,
			longitudinalEpochs, longitudinalInterval); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := run(s.env, 1)
	parallel := run(s.env, 4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("drift table diverges between serial and parallel runs:\n--- serial\n%s\n--- parallel\n%s",
			serial, parallel)
	}
	if !strings.Contains(string(serial), "NetAcuity") || !strings.Contains(string(serial), "country agreement") {
		t.Fatalf("drift table incomplete:\n%s", serial)
	}
	// Every epoch prints one row per database plus a consistency line.
	lines := strings.Count(strings.TrimRight(string(serial), "\n"), "\n") + 1
	if want := 2 + longitudinalEpochs*(len(s.env.DBs)+1); lines != want {
		t.Errorf("drift table has %d lines, want %d:\n%s", lines, want, serial)
	}

	// A full same-seed pipeline rebuild reproduces the table byte for
	// byte — the sweep is a pure function of the seed.
	again, err := New(Quick(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if rerun := run(again.env, 4); !bytes.Equal(serial, rerun) {
		t.Errorf("drift table diverges across same-seed re-runs:\n--- first\n%s\n--- rerun\n%s",
			serial, rerun)
	}
}
