# Pre-PR gate: everything CI would run. `make check` must be green
# before any change goes up for review.

GO ?= go

.PHONY: check vet fmt build test race bench bench-compare

check: vet fmt build race

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; any output fails the gate.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages race first and fast — obs (atomics and
# locks), core (the parallel measurement engine) and ipx (the shared
# lookup index) — then the rest of the tree.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/ipx/...
	$(GO) test -race ./...

# Measurement-engine benchmarks: sweep throughput serial vs parallel,
# plus the lookup index and ECDF machinery under it. Teed into
# BENCH_core.json, the committed baseline bench-compare gates against.
BENCH_PATTERN = Coverage|Accuracy|Consistency|Lookup|ECDF
BENCH_PKGS = ./internal/core/... ./internal/ipx/... ./internal/stats/...

bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run ^$$ $(BENCH_PKGS) | tee BENCH_core.json

# bench-compare re-runs the engine benchmarks and fails on any ns/op
# regression past the threshold against the committed baseline.
bench-compare:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run ^$$ $(BENCH_PKGS) | tee BENCH_core.new.json
	$(GO) run ./cmd/benchcompare -old BENCH_core.json -new BENCH_core.new.json -threshold 1.30
