# Pre-PR gate: everything CI would run. `make check` must be green
# before any change goes up for review. That includes `make lint` —
# cmd/geolint, the project's own static analyzers over ./cmd/... and
# ./internal/... (see the "Static analysis" section of README.md).

GO ?= go

.PHONY: check vet fmt lint lint-json lint-diff build test race race-full chaos metrics-verify longitudinal bench bench-compare fuzz-snap profile

check: vet fmt lint build race metrics-verify

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; any output fails the gate.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# geolint mechanically enforces the engine's invariants (determinism,
# map-iteration order on output paths, context threading, stdlib-only
# imports, layering, slog conventions). Nonzero exit on any finding.
lint:
	$(GO) run ./cmd/geolint ./cmd/... ./internal/...

# lint-json emits the same findings as a JSON array for machine
# consumption — CI uploads geolint-findings.json as a build artifact so
# a red lint job carries its evidence. Exit status matches `make lint`.
lint-json:
	$(GO) run ./cmd/geolint -json ./cmd/... ./internal/... | tee geolint-findings.json

# lint-diff narrows REPORTING to files changed since DIFF_REF (default
# origin/main); analyzers still run over whole packages so cross-file
# facts stay sound. Fast pre-pass for large trees.
DIFF_REF ?= origin/main
lint-diff:
	$(GO) run ./cmd/geolint -diff $(DIFF_REF) ./cmd/... ./internal/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages race first and fast — obs (atomics and
# locks), core (the parallel measurement engine) and ipx (the shared
# lookup index) — then everything else exactly once.
RACE_FIRST = ./internal/obs/... ./internal/core/... ./internal/ipx/...

race:
	$(GO) test -race $(RACE_FIRST)
	$(GO) test -race $$($(GO) list ./... | grep -v -E '^routergeo/internal/(obs|core|ipx)$$')

# race-full is the nightly sweep: EVERY package under -race with a
# doubled count, so the dynamic detector cross-covers what the static
# concurrency analyzers (atomicmix, lockbalance, gorohygiene) prove
# per-function — interleavings and aliasing are exactly what a
# per-function CFG cannot see.
race-full:
	$(GO) test -race -count 2 ./...

# Chaos acceptance suite: the full remote-evaluation sweep under every
# builtin fault policy (internal/faults) plus the fault injector's own
# tests, under -race. Byte-identical output to the no-fault run is the
# bar — see chaos_test.go.
chaos:
	$(GO) test -race -run 'Chaos' -v .
	$(GO) test -race ./internal/faults/ ./internal/geodb/httpapi/

# Observability acceptance suite: boots the real geoserve binary against
# a CSV fixture, scrapes GET /metrics, and validates the exposition with
# the in-repo parser (internal/obs.LintExposition), then watches
# GET /v2/events live through a sweep, a hot reload and a breaker trip —
# see metrics_verify_test.go.
metrics-verify:
	$(GO) test -race -run 'MetricsVerify' -v .

# Longitudinal acceptance suite: publishes a 3-epoch snapshot series
# (byte-identical on republish), serves it from the snapshot archive and
# proves /v2/lookup?asof= answers match direct snapshot loads byte for
# byte, and checks the drift sweep's table is byte-identical between
# serial and parallel runs and across same-seed pipeline rebuilds — see
# longitudinal_accept_test.go.
longitudinal:
	$(GO) test -run 'Longitudinal' -v .

# Measurement-engine benchmarks: sweep throughput serial vs parallel,
# the lookup index and ECDF machinery under it, and the server's
# /v2/lookup hot path (whose zero-alloc steady state the alloc gate
# protects). Teed into BENCH_core.json, the committed baseline
# bench-compare gates against.
BENCH_PATTERN = Coverage|Accuracy|Consistency|Lookup|ECDF
BENCH_PKGS = ./internal/core/... ./internal/ipx/... ./internal/stats/... ./internal/geodb/httpapi/

# Snapshot benchmarks: write/decode/open throughput, lookup latency
# heap vs memory-mapped, and the epoch-diff engine. The /v2 time-travel
# lookup (archive scan + asof parse on the batch hot path) rides in the
# same BENCH_snap.json via its own pattern, since its benchmark lives in
# the httpapi package but gates the snapshot-archive feature.
SNAP_BENCH_PATTERN = Write|Decode|Open|Lookup|Diff
SNAP_BENCH_PKGS = ./internal/geodb/snapshot/...
ASOF_BENCH_PATTERN = V2AsOf
ASOF_BENCH_PKGS = ./internal/geodb/httpapi/

# Observability benchmarks: the Prometheus render cost per scrape and
# the event-bus publish cost on the lookup/reload hot path (idle,
# stalled-subscriber and draining-subscriber cases). Teed into
# BENCH_obs.json, the committed baseline bench-compare gates against.
OBS_BENCH_PATTERN = PromRender|EventPublish
OBS_BENCH_PKGS = ./internal/obs/

bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run ^$$ $(BENCH_PKGS) | tee BENCH_core.json
	$(GO) test -bench '$(SNAP_BENCH_PATTERN)' -benchmem -run ^$$ $(SNAP_BENCH_PKGS) | tee BENCH_snap.json
	$(GO) test -bench '$(ASOF_BENCH_PATTERN)' -benchmem -run ^$$ $(ASOF_BENCH_PKGS) | tee -a BENCH_snap.json
	$(GO) test -bench '$(OBS_BENCH_PATTERN)' -benchmem -run ^$$ $(OBS_BENCH_PKGS) | tee BENCH_obs.json

# bench-compare re-runs the engine benchmarks and fails on any ns/op
# regression past the threshold against the committed baseline. The
# core set also arms the memory gate: allocs/op or B/op growing past
# the alloc threshold — or a zero-alloc benchmark (the /v2/lookup hot
# path) starting to allocate at all — fails the gate. The alloc ratio
# is deliberately a gross-leak backstop, not a tight bound: pool
# recycling makes the worker-variant B/op spiky (a GC-emptied
# sync.Pool re-allocates a 32 KB scratch once in a hundred iterations,
# a ~6x blip on a 1.5 KB/op benchmark), and the guarantee that
# matters — the /v2/lookup zero-alloc steady state — fires at any
# threshold. CI's smoke run loosens the time and ns knobs further for
# shared-runner noise (see ci.yml).
BENCH_TIME ?= 1s
NS_THRESHOLD ?= 1.30
ALLOC_THRESHOLD ?= 10.0

bench-compare:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run ^$$ $(BENCH_PKGS) | tee BENCH_core.new.json
	$(GO) run ./cmd/benchcompare -old BENCH_core.json -new BENCH_core.new.json -threshold $(NS_THRESHOLD) -alloc-threshold $(ALLOC_THRESHOLD)
	$(GO) test -bench '$(SNAP_BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run ^$$ $(SNAP_BENCH_PKGS) | tee BENCH_snap.new.json
	$(GO) test -bench '$(ASOF_BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run ^$$ $(ASOF_BENCH_PKGS) | tee -a BENCH_snap.new.json
	$(GO) run ./cmd/benchcompare -old BENCH_snap.json -new BENCH_snap.new.json -threshold $(NS_THRESHOLD)
	$(GO) test -bench '$(OBS_BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run ^$$ $(OBS_BENCH_PKGS) | tee BENCH_obs.new.json
	$(GO) run ./cmd/benchcompare -old BENCH_obs.json -new BENCH_obs.new.json -threshold $(NS_THRESHOLD)

# 10-second snapshot decoder fuzz smoke — the same job CI runs. The
# corpus seeds live in the package; findings land in testdata/fuzz.
fuzz-snap:
	$(GO) test -run ^$$ -fuzz FuzzDecode -fuzztime 10s ./internal/geodb/snapshot/

# profile captures pprof profiles of a real sweep — the §4/§5.1
# consistency passes and the §5.2.1 accuracy sweep, the three loops the
# parallel engine carries — rather than a microbenchmark: CPU over the
# whole run, heap at exit. Inspect with `go tool pprof cpu.pprof`
# (`top`, `list`, `web`).
profile:
	$(GO) run ./cmd/routergeo -run sec4,sec51,sec521 -cpuprofile cpu.pprof -memprofile mem.pprof
