# Pre-PR gate: everything CI would run. `make check` must be green
# before any change goes up for review.

GO ?= go

.PHONY: check vet fmt build test race bench

check: vet fmt build race

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; any output fails the gate.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The obs package is all atomics and locks; race it first and fast,
# then the rest of the tree.
race:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race ./...

# Module-wide benchmarks (batching win, histogram/span overhead, ...),
# teed into BENCH_obs.json for comparison across PRs.
bench:
	$(GO) test -bench . -benchmem -run ^$$ ./... | tee BENCH_obs.json
