# Pre-PR gate: everything CI would run. `make check` must be green
# before any change goes up for review.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quantifies the /v2 batching win among everything else.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
