package routergeo

// Chaos acceptance suite (run via `make chaos`): a full remote-evaluation
// sweep must produce byte-identical measurement output under every
// builtin fault policy, with the local copy of each database armed as
// the degradation fallback. Latency spikes, 5xx bursts, throttles,
// connection resets, truncated bodies and slow-loris responses may cost
// retries, breaker trips and degraded lookups — but never a changed
// number. A second test pins the observability half of the contract:
// breaker state and outage-taint counts must be visible in /v2/stats
// and in the run manifest.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"routergeo/internal/core"
	"routergeo/internal/faults"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/httpapi"
	"routergeo/internal/obs"
)

// accuracyFingerprint serializes every observable of an accuracy sweep,
// including the raw error-CDF samples, so "byte-identical" is literal.
func accuracyFingerprint(t *testing.T, acc core.Accuracy) []byte {
	t.Helper()
	var points []float64
	if acc.ErrorCDF != nil {
		points = acc.ErrorCDF.Points()
	}
	b, err := json.Marshal(struct {
		Total, CountryAnswered, CountryCorrect int
		CityAnswered, Within40Km               int
		ErrorPoints                            []float64
	}{acc.Total, acc.CountryAnswered, acc.CountryCorrect,
		acc.CityAnswered, acc.Within40Km, points})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chaosServer serves dbs behind the named fault policy. Sleeps are
// nullified so latency/slow-loris faults exercise their code paths
// without real waiting, and the control endpoints stay exempt exactly
// as geoserve -chaos configures them.
func chaosServer(t *testing.T, dbs []*geodb.DB, policy faults.Policy, reg *obs.Registry) *httptest.Server {
	t.Helper()
	opts := []faults.Option{
		faults.WithSleep(func(time.Duration) {}),
		faults.WithExemptPaths("/healthz", "/v2/stats"),
	}
	if reg != nil {
		opts = append(opts, faults.WithObserver(func(k faults.Kind) {
			reg.Counter("chaos.injected." + string(k)).Inc()
		}))
	}
	in := faults.New(policy, opts...)
	srv := httptest.NewServer(in.Middleware(httpapi.NewHandler(dbs,
		httpapi.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))))
	t.Cleanup(srv.Close)
	return srv
}

// chaosClient is tuned for the suite: real retry/breaker/backoff logic,
// but with delays capped in the low milliseconds so a whole sweep per
// policy stays fast.
func chaosClient(baseURL, db string, reg *obs.Registry) *httpapi.Client {
	return httpapi.NewClient(baseURL,
		httpapi.WithDatabase(db),
		httpapi.WithRetries(4),
		httpapi.WithBackoff(time.Millisecond),
		httpapi.WithMaxBackoff(5*time.Millisecond),
		httpapi.WithBreaker(5, 10*time.Millisecond),
		httpapi.WithConcurrency(4),
		httpapi.WithClientMaxBatch(256),
		httpapi.WithClientMetrics(reg),
		httpapi.WithClientLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
}

func TestChaosRemoteEvaluationByteIdentical(t *testing.T) {
	s := testStudy(t)
	db := s.env.DBs[0]
	want := accuracyFingerprint(t, core.MeasureAccuracy(context.Background(), db, s.env.Targets))

	for _, policy := range faults.Builtin() {
		policy := policy
		t.Run(policy.Name, func(t *testing.T) {
			srv := chaosServer(t, s.env.DBs, policy, nil)
			c := chaosClient(srv.URL, db.Name(), nil)
			p, err := httpapi.NewRemoteProvider(c, httpapi.WithFallback(db))
			if err != nil {
				t.Fatal(err)
			}
			got := accuracyFingerprint(t, core.MeasureAccuracy(context.Background(), p, s.env.Targets))
			if string(got) != string(want) {
				t.Errorf("accuracy under %q diverged from the no-fault run:\n got %s\nwant %s",
					policy.Name, got, want)
			}
		})
	}
}

// TestChaosTotalOutageDegradesLosslessly is the hardest degradation
// case: every lookup request fails (rate=1 errors, no burst recovery),
// so the sweep runs entirely on the fallback — and must still match.
func TestChaosTotalOutageDegradesLosslessly(t *testing.T) {
	s := testStudy(t)
	db := s.env.DBs[0]
	policy, err := faults.Parse("errors:rate=1,burst=0")
	if err != nil {
		t.Fatal(err)
	}
	srv := chaosServer(t, s.env.DBs, policy, nil)
	c := chaosClient(srv.URL, db.Name(), nil)
	p, err := httpapi.NewRemoteProvider(c, httpapi.WithFallback(db))
	if err != nil {
		t.Fatal(err)
	}
	want := accuracyFingerprint(t, core.MeasureAccuracy(context.Background(), db, s.env.Targets))
	got := accuracyFingerprint(t, core.MeasureAccuracy(context.Background(), p, s.env.Targets))
	if string(got) != string(want) {
		t.Errorf("total-outage accuracy diverged:\n got %s\nwant %s", got, want)
	}
	if p.Degraded() == 0 {
		t.Error("total outage produced no degraded lookups; the faults never fired?")
	}
	if c.TransportErrors() == 0 {
		t.Error("total outage recorded no transport errors")
	}
}

// TestChaosObservability pins the operator's view: after a sweep under
// chaos, injected-fault tallies, breaker state and outage-taint counts
// must be readable from /v2/stats (served by the chaotic server itself,
// on its exempt path) and recordable into a run manifest.
func TestChaosObservability(t *testing.T) {
	s := testStudy(t)
	db := s.env.DBs[0]
	rec := obs.NewRun("chaos-test")
	reg := rec.Registry()

	policy, err := faults.Parse("errors:rate=1,burst=0")
	if err != nil {
		t.Fatal(err)
	}
	srv := chaosServer(t, s.env.DBs, policy, reg)
	c := chaosClient(srv.URL, db.Name(), reg)
	p, err := httpapi.NewRemoteProvider(c, httpapi.WithFallback(db))
	if err != nil {
		t.Fatal(err)
	}
	core.MeasureAccuracy(context.Background(), p, s.env.Targets)

	// The suite's registry doubles as the stats surface: assemble the
	// same sections /v2/stats would serve from it.
	snap := reg.Snapshot()
	if snap.Counters["chaos.injected.error"] == 0 {
		t.Error("no injected-error tally in the registry")
	}
	if snap.Counters["client.outage.degraded_lookups"] == 0 {
		t.Error("no degraded-lookup tally in the registry")
	}
	host := ""
	for name := range snap.Gauges {
		if n, ok := cutPrefixSuffix(name, "client.breaker.", ".state"); ok {
			host = n
		}
	}
	if host == "" {
		t.Fatalf("no breaker state gauge in the registry: %v", snap.Gauges)
	}

	// And the run manifest records the taint.
	rec.SetTaint("remote.degraded", p.Degraded())
	rec.SetTaint("remote.tainted", p.Tainted())
	m := rec.Manifest()
	if m.Taint["remote.degraded"] == 0 {
		t.Errorf("manifest taint = %+v, want remote.degraded > 0", m.Taint)
	}
	if _, ok := m.Taint["remote.tainted"]; !ok {
		t.Errorf("manifest taint = %+v, want an explicit remote.tainted entry", m.Taint)
	}
	if m.Metrics == nil || m.Metrics.Counters["client.outage.degraded_lookups"] == 0 {
		t.Error("manifest metrics missing the outage counters")
	}
}

func cutPrefixSuffix(s, prefix, suffix string) (string, bool) {
	if len(s) <= len(prefix)+len(suffix) ||
		s[:len(prefix)] != prefix || s[len(s)-len(suffix):] != suffix {
		return "", false
	}
	return s[len(prefix) : len(s)-len(suffix)], true
}

// TestChaosStatsEndpointUnderFire queries the chaotic server's own
// /v2/stats while faults are armed: the exemption must keep the control
// channel clean, and the chaos section must count the injected faults.
func TestChaosStatsEndpointUnderFire(t *testing.T) {
	s := testStudy(t)
	db := s.env.DBs[0]
	policy, err := faults.Parse("errors:rate=1,burst=0")
	if err != nil {
		t.Fatal(err)
	}

	// The server's own registry feeds its /v2/stats; the observer must
	// write there, so build the handler by hand.
	h := httpapi.NewHandler(s.env.DBs,
		httpapi.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	in := faults.New(policy,
		faults.WithSleep(func(time.Duration) {}),
		faults.WithExemptPaths("/healthz", "/v2/stats"),
		faults.WithObserver(func(k faults.Kind) {
			h.Registry().Counter("chaos.injected." + string(k)).Inc()
		}))
	srv := httptest.NewServer(in.Middleware(h))
	t.Cleanup(srv.Close)

	c := chaosClient(srv.URL, db.Name(), h.Registry())
	for i := 0; i < 3; i++ { // every attempt 503s; breaker may trip, fine
		_, _, _ = c.TryLookup(context.Background(), s.env.Targets[i%len(s.env.Targets)].Addr)
	}

	stats, err := httpapi.NewClient(srv.URL).Stats() // exempt path: must succeed despite rate=1
	if err != nil {
		t.Fatalf("stats under full fault rate = %v (exemption broken?)", err)
	}
	if stats.Chaos["error"] == 0 {
		t.Errorf("stats chaos section = %+v, want injected errors counted", stats.Chaos)
	}
	if len(stats.Breakers) == 0 {
		t.Errorf("stats breakers section empty; client instruments not surfaced")
	}
	if stats.Taint["transport_errors"] == 0 {
		t.Errorf("stats taint section = %+v, want transport errors counted", stats.Taint)
	}
}
